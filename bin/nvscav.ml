(* nvscav: NV-Scavenger command-line interface.

   Analyze the instrumented mini-applications for NVRAM placement
   opportunities: per-object metrics, stack analysis, power simulation,
   performance sensitivity, and hybrid-placement planning. *)

open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logs_term =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

module Cli = Nvsc_util.Cli

let app_arg =
  let doc =
    "Application to analyze: nek5000, cam, gtc, s3d, minife or minimd."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let scale_arg = Cli.scale
let iterations_arg = Cli.iterations

let find_app name =
  match Nvsc_apps.Apps.find name with
  | Some app -> Ok app
  | None ->
    Error (Cli.unknown ~what:"application" ~known:Nvsc_apps.Apps.names name)

(* Every analysis below starts from the same run configuration. *)
let scavenger_config ~scale ~iterations =
  Nvsc_core.Scavenger.Config.(
    default |> with_scale scale |> with_iterations iterations)

let with_app name f =
  match find_app name with
  | Ok app -> (f app : unit); `Ok ()
  | Error msg -> `Error (false, msg)

(* Trace I/O failures (damaged .nvt files, unwritable paths) are user
   errors, not crashes. *)
let with_trace_errors f =
  try f () with
  | Nvsc_memtrace.Trace_codec.Error msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

let fmt = Format.std_formatter

(* --- shared report printers --------------------------------------------- *)

(* One printer per report section, shared between the live commands
   ([run]/[analyze]/[power]/[place]) and [replay]: both paths render a
   [Scavenger.result], so a replayed trace produces byte-identical
   output to the live pipeline by construction. *)

let pp_summary_and_objects fmt r =
  Nvsc_core.Stack_analysis.pp_summary_table fmt
    [ Nvsc_core.Stack_analysis.summarize r ];
  Nvsc_core.Object_analysis.pp_report fmt (Nvsc_core.Object_analysis.analyze r)

let pp_analyze_report fmt r =
  pp_summary_and_objects fmt r;
  Format.fprintf fmt "untouched in main loop: %s of long-term data@."
    (Nvsc_util.Table.cell_pct
       (Nvsc_core.Usage_variance.untouched_in_main_fraction r));
  Nvsc_core.Usage_variance.pp_variance fmt
    (Nvsc_core.Usage_variance.variance r)

let pp_trace_line fmt trace =
  Format.fprintf fmt "main-memory trace: %d accesses (%d reads, %d writes)@."
    (Nvsc_memtrace.Trace_log.length trace)
    (Nvsc_memtrace.Trace_log.reads trace)
    (Nvsc_memtrace.Trace_log.writes trace)

let power_results ?(jobs = 1) ?(bank_shards = 1) trace =
  Nvsc_dramsim.Memory_system.compare_technologies ~jobs ~bank_shards
    ~techs:Nvsc_nvram.Technology.paper_set
    ~replay:(fun sink -> Nvsc_memtrace.Trace_log.replay_batch trace sink)
    ()

let pp_normalized_power fmt results =
  List.iter
    (fun ((t : Nvsc_nvram.Technology.t), p) ->
      Format.fprintf fmt "%-8s normalized power %.3f@." t.name p)
    (Nvsc_dramsim.Memory_system.normalized_power results)

let pp_power_report fmt trace =
  pp_trace_line fmt trace;
  let results = power_results trace in
  List.iter
    (fun ((t : Nvsc_nvram.Technology.t), (s : Nvsc_dramsim.Controller.stats)) ->
      Format.fprintf fmt
        "%-8s avg power %a  elapsed %a  row-hit %.2f  bandwidth %.2fGB/s@."
        t.name Nvsc_util.Units.pp_watts s.avg_power_w Nvsc_util.Units.pp_ns
        s.elapsed_ns s.row_hit_rate s.bandwidth_gbs)
    results;
  pp_normalized_power fmt results

let items_of_result (r : Nvsc_core.Scavenger.result) =
  List.map
    (fun (m : Nvsc_core.Object_metrics.t) ->
      {
        Nvsc_placement.Item.id = m.obj.Nvsc_memtrace.Mem_object.id;
        name = m.obj.Nvsc_memtrace.Mem_object.name;
        size_bytes = Nvsc_core.Object_metrics.size_bytes m;
        reads = m.reads;
        writes = m.writes;
        ref_share = m.ref_share;
      })
    (Nvsc_core.Scavenger.global_and_heap_metrics r)

let planned_hybrid ~tech (r : Nvsc_core.Scavenger.result) =
  let hybrid =
    Nvsc_placement.Hybrid_memory.create
      ~dram_bytes:(2 * r.footprint_bytes)
      ~nvram_bytes:(2 * r.footprint_bytes)
      ~tech
  in
  Nvsc_placement.Static_policy.plan ~hybrid (items_of_result r)

let pp_place_report fmt ~tech r =
  let hybrid = planned_hybrid ~tech r in
  List.iter
    (fun (item : Nvsc_placement.Item.t) ->
      Format.fprintf fmt "NVRAM <- %a@." Nvsc_placement.Item.pp item)
    (Nvsc_placement.Hybrid_memory.items_in hybrid
       Nvsc_placement.Hybrid_memory.Nvram);
  Nvsc_placement.Hybrid_memory.pp_assessment fmt
    (Nvsc_placement.Hybrid_memory.assess hybrid);
  Format.pp_print_newline fmt ()

let pp_run_report ?jobs ?bank_shards fmt ~(tech : Nvsc_nvram.Technology.t) r =
  pp_summary_and_objects fmt r;
  let trace = Option.get r.Nvsc_core.Scavenger.mem_trace in
  pp_trace_line fmt trace;
  pp_normalized_power fmt (power_results ?jobs ?bank_shards trace);
  let hybrid =
    planned_hybrid ~tech:(Nvsc_nvram.Technology.get tech.tech) r
  in
  Nvsc_placement.Hybrid_memory.pp_assessment fmt
    (Nvsc_placement.Hybrid_memory.assess hybrid);
  Format.pp_print_newline fmt ()

(* --- list -------------------------------------------------------------- *)

let list_cmd =
  let run () () =
    List.iter
      (fun (module A : Nvsc_apps.Workload.APP) ->
        let tag =
          if List.mem A.name Nvsc_apps.Apps.names then
            Printf.sprintf "paper footprint %.0fMB" A.paper_footprint_mb
          else "beyond the paper's set"
        in
        Format.fprintf fmt "%-8s %s (%s; %s)@." A.name A.description
          A.input_description tag)
      Nvsc_apps.Apps.extended;
    `Ok ()
  in
  let info =
    Cmd.info "list" ~doc:"List the instrumented mini-applications."
  in
  Cmd.v info Term.(ret (const run $ logs_term $ const ()))

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let run () name scale iterations profile =
    with_app name (fun app ->
        Logs.info (fun m ->
            m "running %s at scale %g for %d iterations" name scale iterations);
        Nvsc_obs.with_profiling
          ?trace_out:(Cli.profile_trace_out profile)
          ~enabled:(Cli.profile_enabled profile)
        @@ fun () ->
        pp_analyze_report fmt
          (Nvsc_core.Scavenger.run (scavenger_config ~scale ~iterations) app))
  in
  let info =
    Cmd.info "analyze"
      ~doc:
        "Run an application through NV-Scavenger and report object metrics, \
         stack summary and per-iteration variance."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ Cli.profile))

(* --- stack ------------------------------------------------------------- *)

let stack_cmd =
  let run () name scale iterations =
    with_app name (fun app ->
        let r =
          Nvsc_core.Scavenger.run (scavenger_config ~scale ~iterations) app
        in
        Nvsc_core.Stack_analysis.pp_summary_table fmt
          [ Nvsc_core.Stack_analysis.summarize r ];
        Nvsc_core.Stack_analysis.pp_distribution fmt
          (Nvsc_core.Stack_analysis.distribution r))
  in
  let info =
    Cmd.info "stack"
      ~doc:"Stack-data analysis: fast whole-stack method plus per-routine \
            frames (slow method)."
  in
  Cmd.v info
    Term.(ret (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg))

(* --- traffic ------------------------------------------------------------ *)

let traffic_cmd =
  let run () name scale iterations =
    with_app name (fun app ->
        let r =
          Nvsc_core.Scavenger.run
            Nvsc_core.Scavenger.Config.(
              scavenger_config ~scale ~iterations |> with_trace true)
            app
        in
        Nvsc_core.Traffic_attribution.pp_report fmt
          (Nvsc_core.Traffic_attribution.analyze r))
  in
  let info =
    Cmd.info "traffic"
      ~doc:"Attribute main-memory traffic and burst energy to memory \
            objects: which data structures cost the most, and can they \
            move to NVRAM?"
  in
  Cmd.v info
    Term.(ret (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg))

(* --- trace ------------------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    let doc = "Output trace file (DRAMSim2 mase format)." in
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run () name scale iterations out =
    with_trace_errors @@ fun () ->
    with_app name (fun app ->
        let r =
          Nvsc_core.Scavenger.run
            Nvsc_core.Scavenger.Config.(
              scavenger_config ~scale ~iterations |> with_trace true)
            app
        in
        let trace = Option.get r.mem_trace in
        Nvsc_memtrace.Trace_file.save trace out;
        Format.fprintf fmt "wrote %d records (%d reads, %d writes) to %s@."
          (Nvsc_memtrace.Trace_log.length trace)
          (Nvsc_memtrace.Trace_log.reads trace)
          (Nvsc_memtrace.Trace_log.writes trace)
          out)
  in
  let info =
    Cmd.info "trace"
      ~doc:"Dump an application's cache-filtered main-memory trace to a \
            DRAMSim2-format file."
  in
  Cmd.v info
    Term.(
      ret (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
         $ out_arg))

(* --- power ------------------------------------------------------------- *)

let power_cmd =
  let from_file_arg =
    let doc =
      "Simulate a trace file (DRAMSim2 mase format) instead of running APP \
       (APP is still required for labelling)."
    in
    Arg.(value & opt (some string) None & info [ "from-file" ] ~docv:"FILE" ~doc)
  in
  let run () name scale iterations from_file =
    with_trace_errors @@ fun () ->
    with_app name (fun app ->
        let trace =
          match from_file with
          | Some path -> Nvsc_memtrace.Trace_file.load path
          | None ->
            let r =
              Nvsc_core.Scavenger.run
                Nvsc_core.Scavenger.Config.(
                  scavenger_config ~scale ~iterations |> with_trace true)
                app
            in
            Option.get r.mem_trace
        in
        pp_power_report fmt trace)
  in
  let info =
    Cmd.info "power"
      ~doc:"Memory power simulation over the cache-filtered trace (the \
            Table VI experiment for one application)."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ from_file_arg))

(* --- perf -------------------------------------------------------------- *)

let perf_cmd =
  let asymmetric_arg =
    let doc =
      "Use distinct read/write latencies with posted writes instead of the \
       paper's read-=-write lower bound."
    in
    Arg.(value & flag & info [ "asymmetric" ] ~doc)
  in
  let run () name scale asymmetric =
    with_app name (fun app ->
        let points =
          Nvsc_cpusim.Sensitivity.run ~asymmetric
            ~replay:(Nvsc_core.Experiment.perf_replay ~scale app)
            ()
        in
        Nvsc_cpusim.Sensitivity.pp_points fmt points)
  in
  let info =
    Cmd.info "perf"
      ~doc:"Performance sensitivity to memory latency (the figure 12 \
            experiment for one application)."
  in
  Cmd.v info
    Term.(ret (const run $ logs_term $ app_arg $ scale_arg $ asymmetric_arg))

(* --- place ------------------------------------------------------------- *)

let place_cmd =
  let tech_arg =
    let doc = "NVRAM technology for the hybrid's NVRAM half." in
    Arg.(value & opt string "sttram" & info [ "tech" ] ~docv:"TECH" ~doc)
  in
  let run () name scale iterations tech_name =
    match Nvsc_nvram.Technology.of_string tech_name with
    | None -> `Error (false, Printf.sprintf "unknown technology %S" tech_name)
    | Some tech ->
      with_app name (fun app ->
          pp_place_report fmt ~tech
            (Nvsc_core.Scavenger.run (scavenger_config ~scale ~iterations) app))
  in
  let info =
    Cmd.info "place"
      ~doc:"Plan a static hybrid DRAM/NVRAM placement from the profile and \
            assess the energy/performance consequences."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ tech_arg))

(* --- endurance ---------------------------------------------------------- *)

let endurance_cmd =
  let run () name scale iterations =
    with_app name (fun app ->
        let r =
          Nvsc_core.Scavenger.run
            Nvsc_core.Scavenger.Config.(
              scavenger_config ~scale ~iterations |> with_trace true)
            app
        in
        let trace = Option.get r.mem_trace in
        let line_bytes = 256 in
        let lines = 1 + (r.footprint_bytes / line_bytes) in
        let write_rate =
          float_of_int (Nvsc_memtrace.Trace_log.writes trace)
          /. float_of_int r.iterations *. 10. (* 10 steps/s sustained *)
        in
        List.iter
          (fun tech_id ->
            let tech = Nvsc_nvram.Technology.get tech_id in
            let e = Nvsc_nvram.Endurance.create ~tech ~lines in
            Nvsc_memtrace.Trace_log.replay trace (fun a ->
                if Nvsc_memtrace.Access.is_write a then
                  Nvsc_nvram.Endurance.record_write e
                    ~line:(a.Nvsc_memtrace.Access.addr / line_bytes mod lines));
            Format.fprintf fmt
              "%-8s imbalance %5.1fx  lifetime %12.2f years levelled / %12.3f \
               unlevelled@."
              tech.Nvsc_nvram.Technology.name
              (Nvsc_nvram.Endurance.wear_imbalance e)
              (Nvsc_nvram.Endurance.lifetime_years e ~write_rate_per_s:write_rate
                 ~wear_levelled:true)
              (Nvsc_nvram.Endurance.lifetime_years e ~write_rate_per_s:write_rate
                 ~wear_levelled:false))
          [ Nvsc_nvram.Technology.PCRAM; STTRAM; MRAM ])
  in
  let info =
    Cmd.info "endurance"
      ~doc:"Device-lifetime estimates from the application's write traffic."
  in
  Cmd.v info
    Term.(ret (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg))

(* --- sample ------------------------------------------------------------- *)

let sample_cmd =
  let period_arg =
    Arg.(value & opt int 10_000 & info [ "period" ] ~docv:"N"
           ~doc:"Sampling period in references.")
  in
  let length_arg =
    Arg.(value & opt int 100 & info [ "sample-length" ] ~docv:"N"
           ~doc:"References observed per period.")
  in
  let run () name scale iterations period sample_length =
    with_app name (fun app ->
        Nvsc_core.Extensions.pp_sampling fmt
          (Nvsc_core.Extensions.sampling_ablation ~scale ~iterations ~period
             ~sample_length app))
  in
  let info =
    Cmd.info "sample"
      ~doc:"Measure what periodic sampling (the design §III-D rejects) \
            would lose for this application."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ period_arg $ length_arg))

(* --- hybrid -------------------------------------------------------------- *)

let hybrid_cmd =
  let tech_arg =
    Arg.(value & opt string "sttram"
           & info [ "tech" ] ~docv:"TECH" ~doc:"NVRAM half's technology.")
  in
  let run () name scale iterations tech_name =
    match Nvsc_nvram.Technology.of_string tech_name with
    | None -> `Error (false, Printf.sprintf "unknown technology %S" tech_name)
    | Some tech ->
      with_app name (fun app ->
          Nvsc_core.Extensions.pp_hybrid_simulation fmt
            (Nvsc_core.Extensions.hybrid_simulation ~scale ~iterations ~tech
               app))
  in
  let info =
    Cmd.info "hybrid"
      ~doc:"Simulate the hybrid DRAM+NVRAM memory system (the run the \
            paper's §V could not do): all-DRAM vs all-NVRAM vs hybrid at \
            equal capacity."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ tech_arg))

(* --- fine ---------------------------------------------------------------- *)

let fine_cmd =
  let window_arg =
    Arg.(value & opt int 100_000
           & info [ "window" ] ~docv:"REFS"
               ~doc:"References per placement decision.")
  in
  let run () name scale iterations window =
    with_app name (fun app ->
        Nvsc_core.Extensions.pp_fine_grained fmt
          (Nvsc_core.Extensions.fine_grained_placement ~scale ~iterations
             ~window_refs:window app))
  in
  let info =
    Cmd.info "fine"
      ~doc:"Fine-time-granularity dynamic placement (the monitor §VII-C \
            calls for), one decision per reference window."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ window_arg))

(* --- tasks --------------------------------------------------------------- *)

let tasks_cmd =
  let tasks_arg =
    Arg.(value & opt int 4 & info [ "tasks" ] ~docv:"N" ~doc:"Simulated ranks.")
  in
  let imbalance_arg =
    Arg.(value & opt float 0.2
           & info [ "imbalance" ] ~docv:"F"
               ~doc:"Relative domain-decomposition imbalance across ranks.")
  in
  let run () name scale iterations tasks imbalance =
    with_app name (fun app ->
        let a =
          Nvsc_core.Multi_task.run ~tasks ~base_scale:scale ~iterations
            ~imbalance app
        in
        List.iter
          (fun (t : Nvsc_core.Multi_task.task_summary) ->
            Format.fprintf fmt
              "task %d (scale %.2f): footprint %a, stack ratio %.2f, share \
               %s@."
              t.task t.scale Nvsc_util.Units.pp_bytes t.footprint_bytes
              t.stack.Nvsc_core.Stack_analysis.rw_ratio
              (Nvsc_util.Table.cell_pct
                 t.stack.Nvsc_core.Stack_analysis.reference_pct))
          a.Nvsc_core.Multi_task.tasks;
        Nvsc_core.Multi_task.pp fmt a)
  in
  let info =
    Cmd.info "tasks"
      ~doc:"Multi-rank analysis: is one task's profile (the paper's \
            methodology) representative under load imbalance?"
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ tasks_arg $ imbalance_arg))

(* --- lint ----------------------------------------------------------------- *)

let lint_cmd =
  let check_init_arg =
    let doc =
      "Also track per-byte heap initialisation and report reads of \
       never-written bytes."
    in
    Arg.(value & flag & info [ "check-init" ] ~doc)
  in
  let persist_arg =
    let doc =
      "Also run NVSC-Persist: the static persist lint (epoch balance, \
       placement of the persist set, write intensity) and the dynamic \
       crash-consistency checker over the run, with the flush/fence \
       durability cost per memory technology."
    in
    Arg.(value & flag & info [ "persist" ] ~doc)
  in
  let run () name scale iterations check_init persist =
    with_app name (fun app ->
        let module San = Nvsc_sanitizer.Diagnostic in
        let static = Nvsc_sanitizer.Config_lint.all ~app () in
        let static =
          if persist then
            San.merge static
              (Nvsc_sanitizer.Config_lint.persist ~scale ~iterations app)
          else static
        in
        let r =
          Nvsc_core.Scavenger.run
            Nvsc_core.Scavenger.Config.(
              scavenger_config ~scale ~iterations
              |> with_sanitize ~check_init true
              |> with_persist persist)
            app
        in
        let dynamic = Option.value r.sanitizer ~default:[] in
        let dynamic =
          San.merge dynamic (Option.value r.persist_report ~default:[])
        in
        let report = San.merge static dynamic in
        Format.fprintf fmt "nvscav lint %s (scale %g, %d iterations)@." name
          scale iterations;
        San.pp_report fmt report;
        (match r.persist_stats with
        | Some s ->
          Format.fprintf fmt
            "persist: %d epoch(s), %d flush(es) covering %d line(s), %d \
             fence(s) over %d checked store(s)@."
            s.Nvsc_sanitizer.Persist_check.epochs s.flushes s.flushed_lines
            s.fences s.stores_checked;
          List.iter
            (fun (tech : Nvsc_nvram.Technology.t) ->
              if Nvsc_nvram.Technology.is_nvram tech then
                Format.fprintf fmt "persist cost: %a@." Nvsc_nvram.Persist_cost.pp
                  (Nvsc_nvram.Persist_cost.charge ~tech
                     ~flushed_lines:s.flushed_lines ~fences:s.fences))
            Nvsc_nvram.Technology.paper_set
        | None -> ());
        if not (San.is_clean report) then exit 1)
  in
  let info =
    Cmd.info "lint"
      ~doc:
        "NVSC-San: statically lint the simulator configuration, then run \
         the application under the trace sanitizer (redzones, shadow \
         state, bounds-checked batches) and report every diagnostic. \
         With $(b,--persist), additionally run the NVSC-Persist static \
         lint and dynamic crash-consistency checker over the app's \
         epoch/flush/fence annotations. Exits non-zero if anything is \
         found."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ check_init_arg $ persist_arg))

(* --- sweep --------------------------------------------------------------- *)

let sweep_cmd =
  let module Sweep = Nvsc_sweep in
  let rec map_result f = function
    | [] -> Ok []
    | x :: rest ->
      Result.bind (f x) (fun y ->
          Result.map (fun ys -> y :: ys) (map_result f rest))
  in
  let from_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-trace" ] ~docv:"FILE"
          ~doc:
            "Replay a recorded $(b,.nvt) trace instead of running the \
             applications; the matrix is pinned to the trace's application, \
             scale and iterations, and the cache keys on the trace's \
             content digest.")
  in
  let run () scale iterations jobs cache_dir cache_max apps kinds techs
      override_specs from_trace profile =
    let ( let* ) = Result.bind in
    let forced =
      match from_trace with
      | None -> Ok (apps, scale, iterations)
      | Some path -> (
        (* Pin the matrix to what the trace actually recorded. *)
        try
          let meta, _digest = Nvsc_core.Trace_run.info path in
          Ok
            ( Some [ meta.Nvsc_memtrace.Trace_codec.app ],
              meta.scale, meta.iterations )
        with
        | Nvsc_memtrace.Trace_codec.Error msg | Sys_error msg -> Error msg)
    in
    let matrix =
      let* apps, scale, iterations = forced in
      let* kinds =
        match kinds with
        | None -> Ok None
        | Some names ->
          Result.map Option.some
            (map_result
               (fun s ->
                 match Sweep.Cell.kind_of_string s with
                 | Some k -> Ok k
                 | None ->
                   Error
                     (Cli.unknown ~what:"kind"
                        ~known:
                          (List.map Sweep.Cell.kind_to_string
                             Sweep.Cell.all_kinds)
                        s))
               names)
      in
      let* overrides = map_result Sweep.Matrix.parse_override override_specs in
      Sweep.Matrix.make ?apps ?kinds ?techs ~scale ~iterations ~overrides ()
    in
    match matrix with
    | Error msg -> `Error (false, msg)
    | Ok matrix ->
      let cache =
        Option.map
          (fun dir -> Sweep.Cache.create ~dir ?max_entries:cache_max ())
          cache_dir
      in
      Nvsc_obs.with_profiling
        ?trace_out:(Cli.profile_trace_out profile)
        ~enabled:(Cli.profile_enabled profile)
      @@ fun () ->
      let outcomes, stats =
        Sweep.Engine.run ?jobs ?cache ?trace:from_trace matrix
      in
      Sweep.Engine.pp_outcomes fmt outcomes;
      Format.pp_print_flush fmt ();
      Format.fprintf Format.err_formatter "%a@." Sweep.Engine.pp_stats stats;
      `Ok ()
  in
  let info =
    Cmd.info "sweep"
      ~doc:
        "Run an experiment matrix (applications × analysis kinds × \
         configuration) on a pool of worker domains, memoizing each cell \
         in an on-disk content-addressed cache.  The aggregated report is \
         byte-identical regardless of $(b,--jobs); cache statistics go to \
         standard error."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ scale_arg $ iterations_arg $ Cli.jobs
       $ Cli.cache_dir $ Cli.cache_max $ Cli.apps $ Cli.kinds $ Cli.techs
       $ Cli.overrides $ from_trace_arg $ Cli.profile))

(* --- checkpoint ---------------------------------------------------------- *)

let checkpoint_cmd =
  let mtbf_arg =
    Arg.(value & opt float 21600. & info [ "mtbf" ] ~docv:"SECONDS"
           ~doc:"Machine mean time between failures (default 6h).")
  in
  let size_arg =
    Arg.(value & opt int (8 * 1024 * 1024 * 1024)
           & info [ "size" ] ~docv:"BYTES"
               ~doc:"Checkpoint size per node (default 8 GiB).")
  in
  let run () mtbf size =
    let module CP = Nvsc_placement.Checkpoint in
    let targets =
      CP.parallel_fs ()
      :: List.map
           (fun id -> CP.nvram_local (Nvsc_nvram.Technology.get id))
           [ Nvsc_nvram.Technology.PCRAM; STTRAM; MRAM ]
    in
    List.iter
      (fun target ->
        let delta = CP.checkpoint_time_s target ~size_bytes:size in
        Format.fprintf fmt
          "%-14s checkpoint %a  optimal interval %a  efficiency %.1f%%@."
          target.CP.name Nvsc_util.Units.pp_ns (delta *. 1e9)
          Nvsc_util.Units.pp_ns
          (CP.young_interval_s ~checkpoint_time_s:delta ~mtbf_s:mtbf *. 1e9)
          (100. *. CP.efficiency ~checkpoint_time_s:delta ~mtbf_s:mtbf))
      targets;
    `Ok ()
  in
  let info =
    Cmd.info "checkpoint"
      ~doc:"Checkpoint-to-NVRAM study (the paper's §I motivation): \
            checkpoint time, Young-optimal interval and machine efficiency \
            per target."
  in
  Cmd.v info Term.(ret (const run $ logs_term $ mtbf_arg $ size_arg))

(* --- run ----------------------------------------------------------------- *)

(* The whole pipeline in one command: scavenge with a cache-filtered
   trace, report the objects, compare memory technologies over the trace
   and plan a hybrid placement.  Exercises every instrumented layer, so
   [--profile=FILE] here yields a trace covering scavenger, trace_gen,
   cachesim, dramsim and placement spans. *)
let run_cmd =
  let tech_arg =
    let doc = "NVRAM technology for the hybrid's NVRAM half." in
    Arg.(value & opt string "sttram" & info [ "tech" ] ~docv:"TECH" ~doc)
  in
  let run () name scale iterations shards tech_name profile =
    match Nvsc_nvram.Technology.of_string tech_name with
    | None ->
      `Error
        ( false,
          Cli.unknown ~what:"technology"
            ~known:
              (List.map
                 (fun (t : Nvsc_nvram.Technology.t) -> t.name)
                 Nvsc_nvram.Technology.paper_set)
            tech_name )
    | Some tech ->
      with_app name (fun app ->
          Nvsc_obs.with_profiling
            ?trace_out:(Cli.profile_trace_out profile)
            ~enabled:(Cli.profile_enabled profile)
          @@ fun () ->
          (* one --shards knob drives both sharded stages: the
             set-partitioned cache filter and the bank-sharded DRAM
             replay (the latter clamped to the organisation's banks) *)
          pp_run_report ~jobs:shards ~bank_shards:shards fmt ~tech
            (Nvsc_core.Scavenger.run
               Nvsc_core.Scavenger.Config.(
                 scavenger_config ~scale ~iterations
                 |> with_trace true |> with_shards shards)
               app))
  in
  let info =
    Cmd.info "run"
      ~doc:
        "Run the full pipeline on one application: object analysis, memory \
         power comparison over the cache-filtered trace, and a hybrid \
         placement plan.  With $(b,--profile) the per-layer span profile \
         goes to standard error; $(b,--profile)=$(i,FILE) also writes a \
         Chrome-trace JSON."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ Cli.shards $ tech_arg $ Cli.profile))

(* --- record -------------------------------------------------------------- *)

let record_cmd =
  let out_arg =
    let doc = "Output trace file (NVT binary format)." in
    Arg.(
      required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let chunk_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk-capacity" ] ~docv:"REFS"
          ~doc:"References per chunk (default 65536).")
  in
  let run () name scale iterations out chunk_capacity profile =
    with_trace_errors @@ fun () ->
    with_app name (fun app ->
        Nvsc_obs.with_profiling
          ?trace_out:(Cli.profile_trace_out profile)
          ~enabled:(Cli.profile_enabled profile)
        @@ fun () ->
        let s =
          Nvsc_core.Trace_run.record ?chunk_capacity ~scale ~iterations
            ~path:out app
        in
        Format.fprintf fmt
          "recorded %d references (%d reads, %d writes) in %d chunks to %s@."
          s.Nvsc_memtrace.Trace_codec.refs s.reads s.writes s.chunks out;
        Format.fprintf fmt "%a on disk (%.2f bytes/ref), digest %s@."
          Nvsc_util.Units.pp_bytes s.bytes
          (float_of_int s.bytes /. float_of_int (max 1 s.refs))
          s.digest)
  in
  let info =
    Cmd.info "record"
      ~doc:
        "Run an application once and record its raw emission stream — every \
         reference with emission-time object attribution, instruction counts \
         and phase markers — to a chunked binary $(b,.nvt) trace.  Any \
         $(b,nvscav replay) analysis (and $(b,sweep --from-trace)) then \
         reproduces the live pipeline's reports byte-for-byte without \
         re-running the application."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ app_arg $ scale_arg $ iterations_arg
       $ out_arg $ chunk_arg $ Cli.profile))

(* --- replay -------------------------------------------------------------- *)

let replay_cmd =
  let trace_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Recorded $(b,.nvt) trace file.")
  in
  let kind_arg =
    let kinds =
      [
        ("run", `Run); ("objects", `Objects); ("power", `Power);
        ("perf", `Perf); ("place", `Place);
      ]
    in
    Arg.(
      value
      & opt (enum kinds) `Run
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Analysis to replay: $(b,run) (default), $(b,objects), \
             $(b,power), $(b,perf) or $(b,place).")
  in
  let tech_arg =
    Arg.(
      value & opt string "sttram"
      & info [ "tech" ] ~docv:"TECH"
          ~doc:"NVRAM technology for $(b,run)/$(b,place) replays.")
  in
  let reader_arg =
    let modes =
      [
        ("auto", Nvsc_memtrace.Trace_codec.Auto);
        ("mmap", Nvsc_memtrace.Trace_codec.Mmap);
        ("buffered", Nvsc_memtrace.Trace_codec.Buffered);
      ]
    in
    Arg.(
      value
      & opt (enum modes) Nvsc_memtrace.Trace_codec.Auto
      & info [ "reader" ] ~docv:"MODE"
          ~doc:
            "Chunk I/O path: $(b,auto) (default: mmap when available), \
             $(b,mmap) (require the mapped reader) or $(b,buffered) \
             (channel reads).  Output is byte-identical across modes.")
  in
  let run () path kind tech_name reader profile =
    match Nvsc_nvram.Technology.of_string tech_name with
    | None -> `Error (false, Printf.sprintf "unknown technology %S" tech_name)
    | Some tech ->
      with_trace_errors @@ fun () ->
      Nvsc_obs.with_profiling
        ?trace_out:(Cli.profile_trace_out profile)
        ~enabled:(Cli.profile_enabled profile)
      @@ fun () ->
      (match kind with
      | `Run ->
        pp_run_report fmt ~tech (Nvsc_core.Trace_run.replay ~reader path)
      | `Objects ->
        pp_analyze_report fmt (Nvsc_core.Trace_run.replay ~reader path)
      | `Power ->
        let r = Nvsc_core.Trace_run.replay ~reader path in
        pp_power_report fmt (Option.get r.Nvsc_core.Scavenger.mem_trace)
      | `Perf ->
        Nvsc_cpusim.Sensitivity.pp_points fmt
          (Nvsc_cpusim.Sensitivity.run
             ~replay:(Nvsc_core.Trace_run.perf_replay ~reader path)
             ())
      | `Place ->
        pp_place_report fmt ~tech (Nvsc_core.Trace_run.replay ~reader path));
      `Ok ()
  in
  let info =
    Cmd.info "replay"
      ~doc:
        "Stream a recorded $(b,.nvt) trace through an analysis without \
         re-running the application.  Replayed reports are byte-identical \
         to their live counterparts: $(b,--kind run) matches $(b,nvscav \
         run), $(b,objects) matches $(b,analyze), $(b,power)/$(b,place) \
         match $(b,power)/$(b,place); $(b,perf) matches $(b,perf) for a \
         trace recorded with its scale at 1 iteration.  Memory use is \
         bounded by the trace's chunk capacity, not its length."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ trace_arg $ kind_arg $ tech_arg $ reader_arg
       $ Cli.profile))

(* --- crashsim ------------------------------------------------------------- *)

let crashsim_cmd =
  let trace_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Recorded v2 $(b,.nvt) trace file.")
  in
  let run () path =
    with_trace_errors @@ fun () ->
    let module PC = Nvsc_sanitizer.Persist_check in
    let module San = Nvsc_sanitizer.Diagnostic in
    let boundaries = PC.count_boundaries path in
    let whole, _ = PC.replay path in
    Format.fprintf fmt "nvscav crashsim %s: %d epoch boundarie(s)@." path
      boundaries;
    Format.fprintf fmt "whole trace: ";
    San.pp_report fmt whole;
    let inconsistent = ref (if San.errors whole > 0 then 1 else 0) in
    for k = 0 to boundaries - 1 do
      let report, _ = PC.replay ~crash_at:k path in
      let errs = San.errors report in
      if errs > 0 then begin
        incr inconsistent;
        Format.fprintf fmt "crash at boundary %d: %d error(s)@." k errs;
        San.pp_report fmt report
      end
    done;
    Format.fprintf fmt
      "crashsim: %d crash point(s) replayed, %d inconsistent@." boundaries
      !inconsistent;
    if !inconsistent > 0 then exit 1;
    `Ok ()
  in
  let info =
    Cmd.info "crashsim"
      ~doc:
        "Crash-injection sweep over a recorded $(b,.nvt) trace: replay the \
         whole trace through the NVSC-Persist checker, then once per epoch \
         boundary with the stream logically truncated there — a simulated \
         crash at that point.  An application whose checkpoints are \
         correctly flushed and fenced is consistent at every crash point. \
         Exits non-zero otherwise."
  in
  Cmd.v info Term.(ret (const run $ logs_term $ trace_arg))

(* --- serve ---------------------------------------------------------------- *)

module Serve = Nvsc_serve

let socket_arg =
  let doc =
    "Unix-domain socket path (default $(b,nvscav.sock)); for $(b,serve), \
     where to listen, for $(b,client), where the daemon is."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Loopback TCP port (instead of, or in addition to, the socket)." in
  Arg.(
    value
    & opt (some (Cli.min_int_conv ~what:"port" ~min:1)) None
    & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let max_queue_arg =
    Arg.(
      value
      & opt (Cli.min_int_conv ~what:"max-queue" ~min:1) 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Bound on concurrently admitted analysis requests.")
  in
  let run () socket port jobs cache_dir cache_max max_queue profile =
    (* With only --port given, listen on TCP alone; otherwise a Unix
       socket is always bound (the client's default rendezvous). *)
    let socket =
      match (socket, port) with
      | None, Some _ -> None
      | s, _ -> Some (Option.value s ~default:Serve.Client.default_socket)
    in
    let cfg =
      {
        Serve.Server.socket;
        port;
        jobs;
        cache_dir;
        cache_max;
        max_queue;
        max_frame = Nvsc_util.Json.Lines.default_max_frame;
      }
    in
    match Serve.Server.start cfg with
    | exception Failure msg -> `Error (false, msg)
    | t ->
      List.iter
        (fun s ->
          Sys.set_signal s
            (Sys.Signal_handle (fun _ -> Serve.Server.request_stop t)))
        [ Sys.sigint; Sys.sigterm ];
      Format.eprintf "nvscav serve: listening on %s@."
        (String.concat ", " (Serve.Server.endpoints t));
      Nvsc_obs.with_profiling
        ?trace_out:(Cli.profile_trace_out profile)
        ~enabled:(Cli.profile_enabled profile)
        (fun () -> Serve.Server.await t);
      Format.eprintf "nvscav serve: stopped@.";
      `Ok ()
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the resident analysis daemon: a shared pool of worker domains \
         and a shared warm result cache behind a newline-delimited-JSON \
         socket protocol.  Clients ($(b,nvscav client ...)) stream report \
         chunks as cells complete; repeated requests are served from \
         cache.  SIGINT/SIGTERM drain in-flight requests and remove the \
         socket file."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ socket_arg $ port_arg $ Cli.jobs
       $ Cli.cache_dir $ Cli.cache_max $ max_queue_arg $ Cli.profile))

(* --- client --------------------------------------------------------------- *)

let with_client ~socket ~port f =
  match Serve.Client.connect ?socket ?port () with
  | Error msg -> `Error (false, msg)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

(* Progress chunks go to stdout verbatim — concatenated they are
   byte-identical to the local subcommand's report — and the cache
   accounting goes to stderr, mirroring [sweep]'s stats line. *)
let client_request c req =
  match Serve.Client.request ~on_output:print_string c req with
  | Error msg -> `Error (false, msg)
  | Ok (reply : Serve.Client.reply) ->
    flush stdout;
    Format.eprintf "serve: cells=%d hits=%d misses=%d@." reply.cells
      reply.hits reply.misses;
    `Ok ()

let client_analyze_cmd =
  let run () socket port name scale iterations =
    with_client ~socket ~port @@ fun c ->
    client_request c (Serve.Protocol.Analyze { app = name; scale; iterations })
  in
  let info =
    Cmd.info "analyze"
      ~doc:
        "Remote $(b,nvscav analyze): same report, byte-identical, served \
         from the daemon's warm cache when possible."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ socket_arg $ port_arg $ app_arg $ scale_arg
       $ iterations_arg))

let client_run_cmd =
  let tech_arg =
    Arg.(
      value & opt string "sttram"
      & info [ "tech" ] ~docv:"TECH"
          ~doc:"NVRAM technology for the hybrid's NVRAM half.")
  in
  let run () socket port name scale iterations tech =
    with_client ~socket ~port @@ fun c ->
    client_request c (Serve.Protocol.Run { app = name; scale; iterations; tech })
  in
  let info = Cmd.info "run" ~doc:"Remote $(b,nvscav run), byte-identical." in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ socket_arg $ port_arg $ app_arg $ scale_arg
       $ iterations_arg $ tech_arg))

let client_replay_cmd =
  let trace_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Recorded $(b,.nvt) trace file, resolved on the $(i,server)'s \
             filesystem.")
  in
  let kind_arg =
    Arg.(
      value & opt string "run"
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Analysis to replay: run, objects, power, perf or place.")
  in
  let tech_arg =
    Arg.(
      value & opt string "sttram"
      & info [ "tech" ] ~docv:"TECH"
          ~doc:"NVRAM technology for run/place replays.")
  in
  let run () socket port path kind tech =
    with_client ~socket ~port @@ fun c ->
    client_request c (Serve.Protocol.Replay { path; kind; tech })
  in
  let info =
    Cmd.info "replay" ~doc:"Remote $(b,nvscav replay), byte-identical."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ socket_arg $ port_arg $ trace_arg $ kind_arg
       $ tech_arg))

let client_sweep_cmd =
  let from_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-trace" ] ~docv:"FILE"
          ~doc:
            "Replay a recorded $(b,.nvt) trace (server-side path) instead \
             of running the applications.")
  in
  let run () socket port scale iterations apps kinds techs overrides
      from_trace =
    with_client ~socket ~port @@ fun c ->
    client_request c
      (Serve.Protocol.Sweep
         { apps; kinds; techs; scale; iterations; overrides; from_trace })
  in
  let info =
    Cmd.info "sweep"
      ~doc:
        "Remote $(b,nvscav sweep): the matrix runs on the daemon's shared \
         pool and cache, so concurrent clients never recompute each \
         other's cells."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ logs_term $ socket_arg $ port_arg $ scale_arg
       $ iterations_arg $ Cli.apps $ Cli.kinds $ Cli.techs $ Cli.overrides
       $ from_trace_arg))

let client_stats_cmd =
  let strip_time_arg =
    Arg.(
      value & flag
      & info [ "strip-time" ]
          ~doc:
            "Drop wall-clock ($(b,_ns)) readings from the metrics snapshot \
             for reproducible output.")
  in
  let run () socket port strip_time =
    with_client ~socket ~port @@ fun c ->
    match
      Serve.Client.request c (Serve.Protocol.Stats { strip_time })
    with
    | Error msg -> `Error (false, msg)
    | Ok reply ->
      (match reply.Serve.Client.result with
      | Some json -> print_endline (Nvsc_util.Json.to_string json)
      | None -> ());
      `Ok ()
  in
  let info =
    Cmd.info "stats"
      ~doc:
        "The daemon's state and metrics registry as one JSON object: \
         connections, in-flight requests, cache hit/miss/eviction \
         counters, pool depth."
  in
  Cmd.v info
    Term.(ret (const run $ logs_term $ socket_arg $ port_arg $ strip_time_arg))

let client_ping_cmd =
  let run () socket port =
    with_client ~socket ~port @@ fun c ->
    match Serve.Client.request c Serve.Protocol.Ping with
    | Error msg -> `Error (false, msg)
    | Ok _ -> print_endline "pong"; `Ok ()
  in
  let info = Cmd.info "ping" ~doc:"Liveness probe." in
  Cmd.v info Term.(ret (const run $ logs_term $ socket_arg $ port_arg))

let client_shutdown_cmd =
  let run () socket port =
    with_client ~socket ~port @@ fun c ->
    match Serve.Client.request c Serve.Protocol.Shutdown with
    | Error msg -> `Error (false, msg)
    | Ok _ ->
      Format.eprintf "serve: shutdown requested@.";
      `Ok ()
  in
  let info =
    Cmd.info "shutdown"
      ~doc:"Ask the daemon to drain in-flight requests and exit."
  in
  Cmd.v info Term.(ret (const run $ logs_term $ socket_arg $ port_arg))

let client_cmd =
  let doc =
    "Talk to a running $(b,nvscav serve) daemon.  Reports stream to \
     standard output and are byte-identical to the corresponding local \
     subcommand; cache accounting ($(b,serve: cells=... hits=... \
     misses=...)) goes to standard error."
  in
  Cmd.group (Cmd.info "client" ~doc)
    [
      client_analyze_cmd; client_run_cmd; client_replay_cmd; client_sweep_cmd;
      client_stats_cmd; client_ping_cmd; client_shutdown_cmd;
    ]

let main_cmd =
  let doc = "NV-Scavenger: NVRAM opportunity analysis for HPC applications" in
  let info = Cmd.info "nvscav" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      list_cmd; run_cmd; analyze_cmd; stack_cmd; trace_cmd; power_cmd;
      perf_cmd; place_cmd; hybrid_cmd; endurance_cmd; sample_cmd; tasks_cmd;
      traffic_cmd; fine_cmd; lint_cmd;
      sweep_cmd; checkpoint_cmd; record_cmd; replay_cmd; crashsim_cmd;
      serve_cmd; client_cmd;
    ]

(* Exit codes, uniformly: 0 success, 2 usage error (bad flags, unknown
   names, unreadable inputs — message on stderr), 125 unexpected
   exception.  Cmdliner's defaults (124/125) leak parse errors as 124
   and let domain validation escape as uncaught exceptions; mapping
   [eval_value] ourselves pins the contract down. *)
let () =
  match Cmd.eval_value main_cmd with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 125
