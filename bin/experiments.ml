(* Regenerate every table and figure of the paper's evaluation section.

   Usage: experiments [quick] [no-ext] [markdown] [-j N] [--cache DIR]
   "quick" runs at reduced scale/iterations (for CI smoke runs); "no-ext"
   skips the extension studies.

   The evaluation cells (objects, power and perf per application) run
   through the sweep engine on a pool of [-j N] worker domains, memoized
   in [--cache DIR] when given; the output is byte-identical to the
   legacy serial run for every N and for warm-cache reruns.  Cache
   statistics go to standard error. *)

let flag_value name =
  let value = ref None in
  Array.iteri
    (fun i a ->
      if String.equal a name && i + 1 < Array.length Sys.argv then
        value := Some Sys.argv.(i + 1))
    Sys.argv;
  !value

let () =
  let quick = Array.exists (String.equal "quick") Sys.argv in
  let config =
    if quick then Nvsc_core.Experiment.quick_config
    else Nvsc_core.Experiment.default_config
  in
  let jobs =
    match (flag_value "-j", flag_value "--jobs") with
    | Some n, _ | None, Some n -> int_of_string n
    | None, None -> Nvsc_sweep.Pool.default_jobs ()
  in
  let cache =
    Option.map
      (fun dir -> Nvsc_sweep.Cache.create ~dir ())
      (flag_value "--cache")
  in
  let matrix = Nvsc_sweep.Engine.experiments_matrix ~config in
  let outcomes, stats = Nvsc_sweep.Engine.run ~jobs ?cache matrix in
  let data = Nvsc_sweep.Engine.experiments_data ~config outcomes in
  Format.fprintf Format.err_formatter "%a@." Nvsc_sweep.Engine.pp_stats stats;
  if Array.exists (String.equal "markdown") Sys.argv then begin
    print_string (Nvsc_core.Report.markdown_of_data data);
    exit 0
  end;
  Nvsc_core.Experiment.run_all_of_data Format.std_formatter data;
  (* extensions: the §II/§III-D design alternatives, unless skipped *)
  if not (Array.exists (String.equal "no-ext") Sys.argv) then begin
    let scale = if quick then 0.25 else 0.5 in
    let iterations = if quick then 3 else 5 in
    Format.print_newline ();
    Nvsc_core.Extensions.run_all Format.std_formatter ~scale ~iterations ()
  end;
  Format.print_flush ()
