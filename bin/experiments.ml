(* Regenerate every table and figure of the paper's evaluation section.

   The evaluation cells (objects, power and perf per application) run
   through the sweep engine on a pool of [--jobs N] worker domains,
   memoized in [--cache DIR] when given; the output is byte-identical to
   the legacy serial run for every N and for warm-cache reruns.  Cache
   statistics (and the [--profile] summary) go to standard error.

   The pre-cmdliner interface took bare words ([experiments quick no-ext
   markdown]); those are still accepted as positional arguments. *)

open Cmdliner

let quick_arg =
  let doc = "Reduced scale/iterations (for CI smoke runs)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let no_ext_arg =
  let doc = "Skip the extension studies (the §II/§III-D design alternatives)." in
  Arg.(value & flag & info [ "no-ext" ] ~doc)

let markdown_arg =
  let doc = "Emit the report as Markdown instead of the formatted tables." in
  Arg.(value & flag & info [ "markdown" ] ~doc)

let words_arg =
  let doc =
    "Legacy bare-word flags: $(b,quick), $(b,no-ext), $(b,markdown)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"WORD" ~doc)

let run () quick no_ext markdown jobs cache_dir profile words =
  let known = [ "quick"; "no-ext"; "markdown" ] in
  match List.find_opt (fun w -> not (List.mem w known)) words with
  | Some w -> `Error (false, Nvsc_util.Cli.unknown ~what:"word" ~known w)
  | None ->
    let word w = List.mem w words in
    let quick = quick || word "quick" in
    let no_ext = no_ext || word "no-ext" in
    let markdown = markdown || word "markdown" in
    let config =
      if quick then Nvsc_core.Experiment.quick_config
      else Nvsc_core.Experiment.default_config
    in
    let jobs =
      match jobs with Some n -> n | None -> Nvsc_sweep.Pool.default_jobs ()
    in
    let cache =
      Option.map (fun dir -> Nvsc_sweep.Cache.create ~dir ()) cache_dir
    in
    Nvsc_obs.with_profiling
      ?trace_out:(Nvsc_util.Cli.profile_trace_out profile)
      ~enabled:(Nvsc_util.Cli.profile_enabled profile)
    @@ fun () ->
    let matrix = Nvsc_sweep.Engine.experiments_matrix ~config in
    let outcomes, stats = Nvsc_sweep.Engine.run ~jobs ?cache matrix in
    let data = Nvsc_sweep.Engine.experiments_data ~config outcomes in
    Format.fprintf Format.err_formatter "%a@." Nvsc_sweep.Engine.pp_stats
      stats;
    if markdown then begin
      print_string (Nvsc_core.Report.markdown_of_data data);
      `Ok ()
    end
    else begin
      Nvsc_core.Experiment.run_all_of_data Format.std_formatter data;
      (* extensions: the §II/§III-D design alternatives, unless skipped *)
      if not no_ext then begin
        let scale = if quick then 0.25 else 0.5 in
        let iterations = if quick then 3 else 5 in
        Format.print_newline ();
        Nvsc_core.Extensions.run_all Format.std_formatter ~scale ~iterations
          ()
      end;
      Format.print_flush ();
      `Ok ()
    end

let cmd =
  let doc = "Regenerate the paper's evaluation tables and figures" in
  let info = Cmd.info "experiments" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ const () $ quick_arg $ no_ext_arg $ markdown_arg
       $ Nvsc_util.Cli.jobs $ Nvsc_util.Cli.cache_dir $ Nvsc_util.Cli.profile
       $ words_arg))

let () = exit (Cmd.eval cmd)
