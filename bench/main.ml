(* Benchmark harness: one Bechamel test per paper table/figure (measuring
   the cost of regenerating it at a reduced configuration), plus ablation
   benches for the design choices DESIGN.md calls out (object-registry LRU
   cache and bucket width, address-mapping scheme, trace-buffer batching).

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit

module E = Nvsc_core.Experiment
module Tech = Nvsc_nvram.Technology
module Access = Nvsc_memtrace.Access

let quick = { E.scale = 0.15; iterations = 3; perf_scale = 0.15 }

(* Shared inputs, computed once: the benches measure regeneration cost, not
   workload execution cost (benched separately below). *)
let bundle = lazy (E.collect ~config:quick ())

let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* --- per-table/figure benches ------------------------------------------ *)

let quick_scavenger_config =
  Nvsc_core.Scavenger.Config.(
    default |> with_scale 0.1 |> with_iterations 1)

let bench_scavenger name =
  Test.make ~name:(Printf.sprintf "pipeline:scavenger-%s" name)
    (Staged.stage (fun () ->
         ignore
           (Nvsc_core.Scavenger.run quick_scavenger_config
              (Option.get (Nvsc_apps.Apps.find name)))))

(* Tentpole check: the same run with the span recorder armed.  The obs
   buffers are dropped between runs so they cannot grow across the
   measurement; the printed ratio is the armed-vs-disarmed overhead (the
   disarmed cost itself is the scavenger bench above vs its pre-obs
   baseline). *)
let bench_scavenger_armed name =
  Test.make ~name:(Printf.sprintf "obs:scavenger-%s-armed" name)
    (Staged.stage (fun () ->
         ignore
           (Nvsc_core.Scavenger.run
              Nvsc_core.Scavenger.Config.(
                quick_scavenger_config |> with_obs Nvsc_obs.on)
              (Option.get (Nvsc_apps.Apps.find name)));
         Nvsc_obs.reset ()))

let bench_table1 =
  Test.make ~name:"table1:app-characteristics"
    (Staged.stage (fun () -> E.table1 null_fmt (Lazy.force bundle)))

let bench_table2 =
  Test.make ~name:"table2:cache-config"
    (Staged.stage (fun () -> E.table2 null_fmt ()))

let bench_table3 =
  Test.make ~name:"table3:system-config"
    (Staged.stage (fun () -> E.table3 null_fmt ()))

let bench_table4 =
  Test.make ~name:"table4:memory-latencies"
    (Staged.stage (fun () -> E.table4 null_fmt ()))

let bench_table5 =
  Test.make ~name:"table5:stack-analysis"
    (Staged.stage (fun () -> ignore (E.table5_data (Lazy.force bundle))))

let bench_fig2 =
  Test.make ~name:"fig2:cam-frame-distribution"
    (Staged.stage (fun () -> ignore (E.fig2_data (Lazy.force bundle))))

let bench_fig3_6 =
  Test.make ~name:"fig3-6:object-metrics"
    (Staged.stage (fun () -> ignore (E.fig3_6_data (Lazy.force bundle))))

let bench_fig7 =
  Test.make ~name:"fig7:usage-cdf"
    (Staged.stage (fun () -> ignore (E.fig7_data (Lazy.force bundle))))

let bench_fig8_11 =
  Test.make ~name:"fig8-11:metric-variance"
    (Staged.stage (fun () -> ignore (E.fig8_11_data (Lazy.force bundle))))

let bench_table6 =
  Test.make ~name:"table6:power-simulation"
    (Staged.stage (fun () -> ignore (E.table6_data (Lazy.force bundle))))

let bench_fig12 =
  Test.make ~name:"fig12:latency-sensitivity"
    (Staged.stage (fun () -> ignore (E.fig12_data ~config:quick ())))

(* --- substrate micro-benches ------------------------------------------- *)

(* Materialise a generated stream as an array fixture by draining it into a
   trace log (streaming API; no intermediate list). *)
let gen_array gen =
  let log = Nvsc_memtrace.Trace_log.create () in
  let s = Nvsc_memtrace.Trace_log.sink log in
  ignore (Nvsc_memtrace.Trace_gen.into gen s);
  Nvsc_memtrace.Sink.flush s;
  Array.init (Nvsc_memtrace.Trace_log.length log) (Nvsc_memtrace.Trace_log.get log)

let trace_10k =
  lazy
    (gen_array
       (Nvsc_memtrace.Trace_gen.hot_cold ~seed:7 ~hot_fraction:0.7
          ~hot_lines:8192 ~cold_lines:262144 ~write_fraction:0.3 ~n:10_000 ()))

(* Fixture for the sink-throughput comparison: a recorded 100k-reference
   trace replayed per-access (old pipeline shape) vs as one flat batch. *)
let throughput_refs = 100_000

let log_100k =
  lazy
    (let log = Nvsc_memtrace.Trace_log.create ~initial_capacity:throughput_refs () in
     let s = Nvsc_memtrace.Trace_log.sink log in
     ignore
       (Nvsc_memtrace.Trace_gen.into
          (Nvsc_memtrace.Trace_gen.zipf ~seed:11 ~lines:65536
             ~write_fraction:0.3 ~n:throughput_refs ())
          s);
     Nvsc_memtrace.Sink.flush s;
     log)

let bench_cache_filter =
  Test.make ~name:"substrate:cache-hierarchy-10k"
    (Staged.stage (fun () ->
         let h =
           Nvsc_cachesim.Hierarchy.create ~sink:(Nvsc_memtrace.Sink.null ()) ()
         in
         Array.iter (Nvsc_cachesim.Hierarchy.access h) (Lazy.force trace_10k);
         Nvsc_cachesim.Hierarchy.drain h))

let bench_controller tech_name tech =
  Test.make ~name:(Printf.sprintf "substrate:dramsim-10k-%s" tech_name)
    (Staged.stage (fun () ->
         let c = Nvsc_dramsim.Controller.create ~tech () in
         Array.iter (Nvsc_dramsim.Controller.submit c) (Lazy.force trace_10k);
         ignore (Nvsc_dramsim.Controller.stats c)))

let bench_perf_model =
  Test.make ~name:"substrate:perf-model-10k"
    (Staged.stage (fun () ->
         let m = Nvsc_cpusim.Perf_model.create ~mem_latency_ns:100. () in
         Array.iter
           (fun a ->
             Nvsc_cpusim.Perf_model.instructions m 4;
             Nvsc_cpusim.Perf_model.access m a)
           (Lazy.force trace_10k);
         ignore (Nvsc_cpusim.Perf_model.report m)))

(* --- ablations ---------------------------------------------------------- *)

(* Registry lookup with and without the LRU software cache (paper §III-D):
   the ablation quantifies how much the cache buys on a hot access
   pattern. *)
let registry_with_objects ~cache_slots =
  let r = Nvsc_memtrace.Object_registry.create ~cache_slots () in
  for i = 0 to 499 do
    ignore
      (Nvsc_memtrace.Object_registry.register r
         (Nvsc_memtrace.Mem_object.make ~id:i ~name:"o"
            ~kind:Nvsc_memtrace.Layout.Heap
            ~base:(Nvsc_memtrace.Layout.heap_base + (i * 8192))
            ~size:8192 ()))
  done;
  r

let lookup_pattern =
  lazy
    (let rng = Nvsc_util.Rng.of_int 3 in
     Array.init 20_000 (fun _ ->
         (* hot subset with occasional far references *)
         let obj =
           if Nvsc_util.Rng.bernoulli rng 0.9 then Nvsc_util.Rng.int rng 4
           else Nvsc_util.Rng.int rng 500
         in
         Nvsc_memtrace.Layout.heap_base + (obj * 8192)
         + (8 * Nvsc_util.Rng.int rng 1024)))

let bench_registry_lookup ~name ~cache_slots =
  Test.make ~name
    (Staged.stage (fun () ->
         let r = registry_with_objects ~cache_slots in
         Array.iter
           (fun addr -> ignore (Nvsc_memtrace.Object_registry.lookup r addr))
           (Lazy.force lookup_pattern)))

let bench_mapping scheme =
  Test.make
    ~name:
      (Printf.sprintf "ablation:mapping-%s"
         (Nvsc_dramsim.Address_mapping.scheme_name scheme))
    (Staged.stage (fun () ->
         let c = Nvsc_dramsim.Controller.create ~scheme ~tech:(Tech.get Tech.DDR3) () in
         Array.iter (Nvsc_dramsim.Controller.submit c) (Lazy.force trace_10k);
         ignore (Nvsc_dramsim.Controller.stats c)))

let bench_sink_capacity ~name ~capacity =
  Test.make ~name
    (Staged.stage (fun () ->
         let count = ref 0 in
         let s =
           Nvsc_memtrace.Sink.create ~capacity (fun _ ~first:_ ~n ->
               count := !count + n)
         in
         Array.iter (Nvsc_memtrace.Sink.push_access s) (Lazy.force trace_10k);
         Nvsc_memtrace.Sink.flush s))

(* Satellite: old per-access closure transport vs flat batch delivery over
   the same recorded trace.  The per-run ratio is printed after the table. *)
let bench_sink_closure =
  Test.make ~name:"pipeline:sink-throughput-closure"
    (Staged.stage (fun () ->
         let total = ref 0 in
         Nvsc_memtrace.Trace_log.replay (Lazy.force log_100k) (fun a ->
             total := !total + (a.Access.addr lxor a.Access.size));
         ignore !total))

let bench_sink_batched =
  Test.make ~name:"pipeline:sink-throughput-batched"
    (Staged.stage (fun () ->
         let total = ref 0 in
         (* capacity 1: replay_batch delivers the log zero-copy, so the
            sink's own buffer is never used — don't pay for one *)
         let s =
           Nvsc_memtrace.Sink.create ~capacity:1 (fun b ~first ~n ->
               let module B = Nvsc_memtrace.Sink.Batch in
               for i = first to first + n - 1 do
                 total := !total + (B.addr b i lxor B.size b i)
               done)
         in
         Nvsc_memtrace.Trace_log.replay_batch (Lazy.force log_100k) s;
         ignore !total))

(* Satellite: full scavenger run with the trace sanitizer attached vs the
   bare sink pipeline — the cost of checked batch accessors, redzones and
   shadow-state maintenance.  The per-run ratio is printed after the
   table. *)
let bench_scavenger_sanitized name =
  Test.make ~name:(Printf.sprintf "pipeline:scavenger-%s-sanitized" name)
    (Staged.stage (fun () ->
         ignore
           (Nvsc_core.Scavenger.run
              Nvsc_core.Scavenger.Config.(
                quick_scavenger_config |> with_sanitize true)
              (Option.get (Nvsc_apps.Apps.find name)))))

(* Satellite: the `lint --persist` pipeline — the sanitized run with the
   NVSC-Persist crash-consistency checker also attached.  The apps are
   epoch-annotated, so this is the armed-but-clean cost over plain lint:
   per-write persist-set membership tests plus the per-line state machine
   at every flush/fence/commit (the transport and shadow-state cost is
   already paid by the sanitizer).  The per-run ratio is printed after
   the table. *)
let bench_scavenger_persist name =
  Test.make ~name:(Printf.sprintf "persist:check-%s" name)
    (Staged.stage (fun () ->
         ignore
           (Nvsc_core.Scavenger.run
              Nvsc_core.Scavenger.Config.(
                quick_scavenger_config |> with_sanitize true
                |> with_persist true)
              (Option.get (Nvsc_apps.Apps.find name)))))

let bench_wear_leveling ~name scheme =
  Test.make ~name
    (Staged.stage (fun () ->
         let t = Nvsc_nvram.Wear_leveling.create scheme ~lines:1024 in
         let rng = Nvsc_util.Rng.of_int 5 in
         for _ = 1 to 20_000 do
           let l =
             if Nvsc_util.Rng.bernoulli rng 0.9 then 0
             else Nvsc_util.Rng.int rng 1024
           in
           ignore (Nvsc_nvram.Wear_leveling.write t l)
         done))

let bench_dram_cache =
  Test.make ~name:"substrate:dram-page-cache-10k"
    (Staged.stage (fun () ->
         let dc =
           Nvsc_placement.Dram_cache.create ~dram_pages:256
             ~tech:(Tech.get Tech.PCRAM) ()
         in
         Array.iter (Nvsc_placement.Dram_cache.access dc) (Lazy.force trace_10k);
         Nvsc_placement.Dram_cache.drain dc))

let bench_sampler =
  Test.make ~name:"substrate:sampler-10k"
    (Staged.stage (fun () ->
         let s =
           Nvsc_memtrace.Sampler.create ~period:100 ~sample_length:10
             ~sink:ignore
         in
         Array.iter (Nvsc_memtrace.Sampler.push s) (Lazy.force trace_10k)))

let bench_trace_file =
  Test.make ~name:"substrate:trace-file-roundtrip-10k"
    (Staged.stage (fun () ->
         let log = Nvsc_memtrace.Trace_log.create () in
         Array.iter (Nvsc_memtrace.Trace_log.record log) (Lazy.force trace_10k);
         let path = Filename.temp_file "nvsc_bench" ".trace" in
         Fun.protect
           ~finally:(fun () -> Sys.remove path)
           (fun () ->
             Nvsc_memtrace.Trace_file.save log path;
             ignore (Nvsc_memtrace.Trace_file.load path))))

(* Satellite: NVT record/replay vs regenerating the same analysis live.
   The fixture trace is recorded once outside the measured region; the
   Mref/s and bytes/ref summary is printed after the table. *)
let nvt_fixture =
  lazy
    (let path = Filename.temp_file "nvsc_bench" ".nvt" in
     let summary =
       Nvsc_core.Trace_run.record ~scale:0.1 ~iterations:1 ~path
         (Option.get (Nvsc_apps.Apps.find "gtc"))
     in
     (path, summary))

let bench_trace_record =
  Test.make ~name:"trace:record-gtc"
    (Staged.stage (fun () ->
         let path = Filename.temp_file "nvsc_bench_rec" ".nvt" in
         Fun.protect
           ~finally:(fun () -> Sys.remove path)
           (fun () ->
             ignore
               (Nvsc_core.Trace_run.record ~scale:0.1 ~iterations:1 ~path
                  (Option.get (Nvsc_apps.Apps.find "gtc"))))))

let bench_trace_replay =
  Test.make ~name:"trace:replay-gtc"
    (Staged.stage (fun () ->
         ignore (Nvsc_core.Trace_run.replay (fst (Lazy.force nvt_fixture)))))

(* the live pipeline producing the result a replay reproduces *)
let bench_trace_livegen =
  Test.make ~name:"trace:livegen-gtc"
    (Staged.stage (fun () ->
         ignore
           (Nvsc_core.Scavenger.run
              Nvsc_core.Scavenger.Config.(
                quick_scavenger_config |> with_trace true)
              (Option.get (Nvsc_apps.Apps.find "gtc")))))

(* Satellite: a resident daemon with a warm cache vs paying process
   startup and a cold analysis for every request.  The fixture starts an
   in-process server on a temp socket and issues one analyze to warm the
   cache; the measured region is then a full client round-trip (request,
   streamed output, done frame) that hits the cache on every cell.  The
   cold-spawn bench runs the same analysis by exec'ing the real binary,
   which is what `nvscav serve` exists to amortise; the req/s summary is
   printed after the table. *)
module Serve = Nvsc_serve

let serve_req =
  Serve.Protocol.Analyze { app = "gtc"; scale = 0.1; iterations = 1 }

let serve_fixture =
  lazy
    (let dir = Filename.temp_file "nvsc_bench_serve" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o700;
     let sock = Filename.concat dir "nvscav.sock" in
     let t =
       Serve.Server.start
         { Serve.Server.default with socket = Some sock; jobs = Some 2 }
     in
     let c =
       match Serve.Client.connect ~socket:sock () with
       | Ok c -> c
       | Error msg -> failwith msg
     in
     (* warm the cache so the measured round-trips miss nothing *)
     (match Serve.Client.request ~on_output:ignore c serve_req with
     | Ok _ -> ()
     | Error msg -> failwith msg);
     (t, c, dir))

let bench_serve_warm =
  Test.make ~name:"serve:analyze-gtc-warm"
    (Staged.stage (fun () ->
         let _, c, _ = Lazy.force serve_fixture in
         match Serve.Client.request ~on_output:ignore c serve_req with
         | Ok _ -> ()
         | Error msg -> failwith msg))

(* the daemon's baseline: exec the binary and run the same analysis cold *)
let nvscav_exe =
  lazy
    (let candidate =
       Filename.concat
         (Filename.dirname Sys.executable_name)
         (Filename.concat ".." (Filename.concat "bin" "nvscav.exe"))
     in
     if Sys.file_exists candidate then Some candidate else None)

let bench_serve_cold exe =
  Test.make ~name:"serve:analyze-gtc-coldspawn"
    (Staged.stage (fun () ->
         let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
         let pid =
           Unix.create_process exe
             [| exe; "analyze"; "gtc"; "--scale"; "0.1"; "--iterations"; "1" |]
             null null null
         in
         Unix.close null;
         ignore (Unix.waitpid [] pid)))

(* Satellite: the full experiments matrix (objects, power and perf cells
   for every paper app) through the sweep engine at 1, 2 and 4 worker
   domains; the scaling summary is printed after the table.  Speedup only
   shows on multicore hosts — on one core the three land together. *)
let sweep_config = { E.scale = 0.1; iterations = 2; perf_scale = 0.1 }

let sweep_matrix =
  lazy (Nvsc_sweep.Engine.experiments_matrix ~config:sweep_config)

let bench_sweep jobs =
  Test.make ~name:(Printf.sprintf "sweep:experiments-matrix-%d" jobs)
    (Staged.stage (fun () ->
         ignore (Nvsc_sweep.Engine.run ~jobs (Lazy.force sweep_matrix))))

let tests =
  Test.make_grouped ~name:"nv-scavenger"
    ((* the cold-spawn baseline needs the built binary next to this bench *)
     (match Lazy.force nvscav_exe with
     | Some exe -> [ bench_serve_cold exe ]
     | None -> [])
    @ [
      bench_scavenger "nek5000";
      bench_scavenger "cam";
      bench_scavenger "gtc";
      bench_scavenger "s3d";
      bench_table1;
      bench_table2;
      bench_table3;
      bench_table4;
      bench_table5;
      bench_fig2;
      bench_fig3_6;
      bench_fig7;
      bench_fig8_11;
      bench_table6;
      bench_fig12;
      bench_cache_filter;
      bench_controller "ddr3" (Tech.get Tech.DDR3);
      bench_controller "pcram" (Tech.get Tech.PCRAM);
      bench_perf_model;
      bench_registry_lookup ~name:"ablation:registry-lru8" ~cache_slots:8;
      bench_registry_lookup ~name:"ablation:registry-lru1" ~cache_slots:1;
      bench_mapping Nvsc_dramsim.Address_mapping.Row_bank_rank_col;
      bench_mapping Nvsc_dramsim.Address_mapping.Line_interleave;
      bench_sink_capacity ~name:"ablation:sink-batch-64k" ~capacity:65536;
      bench_sink_capacity ~name:"ablation:sink-batch-16" ~capacity:16;
      bench_sink_closure;
      bench_sink_batched;
      bench_scavenger_sanitized "gtc";
      bench_scavenger_armed "gtc";
      bench_scavenger_persist "gtc";
      bench_wear_leveling ~name:"ablation:wear-start-gap"
        (Nvsc_nvram.Wear_leveling.Start_gap { gap_move_interval = 100 });
      bench_wear_leveling ~name:"ablation:wear-table"
        (Nvsc_nvram.Wear_leveling.Table_based { swap_interval = 100 });
      bench_dram_cache;
      bench_trace_record;
      bench_trace_replay;
      bench_trace_livegen;
      bench_sweep 1;
      bench_sweep 2;
      bench_sweep 4;
      bench_serve_warm;
      bench_sampler;
      bench_trace_file;
      Test.make ~name:"ablation:scheduler-fr-fcfs-10k"
        (Staged.stage (fun () ->
             let c =
               Nvsc_dramsim.Controller.create
                 ~scheduler:(Nvsc_dramsim.Controller.Fr_fcfs 16)
                 ~tech:(Tech.get Tech.DDR3) ()
             in
             Array.iter (Nvsc_dramsim.Controller.submit c) (Lazy.force trace_10k);
             ignore (Nvsc_dramsim.Controller.stats c)));
      ])

let () =
  (* force shared fixtures outside the measured region *)
  ignore (Lazy.force bundle);
  ignore (Lazy.force trace_10k);
  ignore (Lazy.force log_100k);
  ignore (Lazy.force lookup_pattern);
  ignore (Lazy.force nvt_fixture);
  ignore (Lazy.force serve_fixture);
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      clock []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Format.printf "%-50s %14s@." "benchmark" "time/run";
  Format.printf "%s@." (String.make 66 '-');
  List.iter
    (fun (name, ns) ->
      Format.printf "%-50s %12.1fus@." name (ns /. 1_000.))
    rows;
  (* sink-throughput summary: refs/sec through both transports *)
  let find suffix =
    List.find_map
      (fun (name, ns) ->
        if
          String.length name >= String.length suffix
          && String.sub name
               (String.length name - String.length suffix)
               (String.length suffix)
             = suffix
        then Some ns
        else None)
      rows
  in
  (match (find "sink-throughput-closure", find "sink-throughput-batched") with
  | Some c, Some b when b > 0. && c > 0. ->
    let refs = float_of_int throughput_refs in
    Format.printf
      "@.sink throughput (%d refs): closure %.1f Mref/s, batched %.1f Mref/s \
       (%.2fx)@."
      throughput_refs
      (refs /. c *. 1_000.)
      (refs /. b *. 1_000.)
      (c /. b)
  | _ -> ());
  (* sanitizer-overhead summary: same app, bare sink vs NVSC-San attached *)
  (match (find "scavenger-gtc", find "scavenger-gtc-sanitized") with
  | Some bare, Some san when bare > 0. ->
    Format.printf
      "sanitizer overhead (gtc): bare %.1fus, sanitized %.1fus (%.2fx)@."
      (bare /. 1_000.) (san /. 1_000.) (san /. bare)
  | _ -> ());
  (* persist-overhead summary: the lint pipeline with and without the
     crash-consistency checker over a clean epoch-annotated run *)
  (match (find "scavenger-gtc-sanitized", find "persist:check-gtc") with
  | Some lint, Some chk when lint > 0. ->
    Format.printf
      "persist overhead (gtc, armed-but-clean): lint %.1fus, lint --persist \
       %.1fus (%.2fx)@."
      (lint /. 1_000.) (chk /. 1_000.) (chk /. lint)
  | _ -> ());
  (* obs-overhead summary: same app, recorder disarmed vs armed *)
  (match (find "scavenger-gtc", find "scavenger-gtc-armed") with
  | Some bare, Some armed when bare > 0. ->
    Format.printf
      "obs:overhead (gtc): disarmed %.1fus, armed %.1fus (%.2fx)@."
      (bare /. 1_000.) (armed /. 1_000.) (armed /. bare)
  | _ -> ());
  (* NVT summary: record/replay throughput and density vs regenerating the
     same analysis live *)
  (match
     ( find "trace:record-gtc",
       find "trace:replay-gtc",
       find "trace:livegen-gtc" )
   with
  | Some rec_ns, Some rep_ns, Some live_ns
    when rec_ns > 0. && rep_ns > 0. && live_ns > 0. ->
    let path, (s : Nvsc_memtrace.Trace_codec.summary) =
      Lazy.force nvt_fixture
    in
    let refs = float_of_int s.refs in
    Format.printf
      "nvt trace (gtc, %d refs, %.2f bytes/ref): record %.1f Mref/s, replay \
       %.1f Mref/s, live generation %.1f Mref/s (replay %.2fx live)@."
      s.refs
      (float_of_int s.bytes /. refs)
      (refs /. rec_ns *. 1_000.)
      (refs /. rep_ns *. 1_000.)
      (refs /. live_ns *. 1_000.)
      (live_ns /. rep_ns);
    Sys.remove path
  | _ -> ());
  (* serve summary: warm daemon round-trips vs paying process startup and
     a cold analysis per request *)
  (match find "serve:analyze-gtc-warm" with
  | Some warm when warm > 0. -> (
    let req_s = 1e9 /. warm in
    match find "serve:analyze-gtc-coldspawn" with
    | Some cold when cold > 0. ->
      Format.printf
        "serve (gtc analyze, warm cache): round-trip %.1fus (%.0f req/s), \
         cold process %.1fms per request (%.0fx)@."
        (warm /. 1e3) req_s (cold /. 1e6) (cold /. warm)
    | _ ->
      Format.printf
        "serve (gtc analyze, warm cache): round-trip %.1fus (%.0f req/s)@."
        (warm /. 1e3) req_s)
  | _ -> ());
  (* sweep-scaling summary: the same experiments matrix at 1/2/4 domains *)
  (match
     ( find "experiments-matrix-1",
       find "experiments-matrix-2",
       find "experiments-matrix-4" )
   with
  | Some j1, Some j2, Some j4 when j1 > 0. && j2 > 0. && j4 > 0. ->
    Format.printf
      "sweep scaling (12-cell matrix): 1 domain %.1fms, 2 domains %.1fms \
       (%.2fx), 4 domains %.1fms (%.2fx)@."
      (j1 /. 1e6) (j2 /. 1e6) (j1 /. j2) (j4 /. 1e6) (j1 /. j4)
  | _ -> ());
  (* the daemon fixture owns a socket and a temp cache: shut it down *)
  let t, c, dir = Lazy.force serve_fixture in
  Serve.Client.close c;
  Serve.Server.stop t;
  try Unix.rmdir dir with Unix.Unix_error _ -> ()
