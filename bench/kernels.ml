(* Micro-benchmark suite for the allocation-free simulation kernels
   (DESIGN.md "Kernel fast paths"): cache lookup hit/miss costs, the
   hierarchy filter stage on three stream shapes plus the captured gtc
   reference stream — each against the pre-optimization oracle in
   test/oracle/ — the DRAM controller submit path, counter recording, and
   the end-to-end scavenger pipeline.

   Results go to a machine-readable JSON file (default BENCH_kernels.json;
   CI's perf-smoke job runs [--quick] and uploads it).  Timings use
   [Sys.time] best-of-N: the suite is single-threaded and each measured
   body runs long enough that clock granularity is noise.  Speedup ratios
   are measured interleaved (optimized / oracle alternating) so frequency
   drift hits both sides equally. *)

module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink
module Trace_log = Nvsc_memtrace.Trace_log
module Trace_gen = Nvsc_memtrace.Trace_gen
module Cache = Nvsc_cachesim.Cache
module Cache_params = Nvsc_cachesim.Cache_params
module Hierarchy = Nvsc_cachesim.Hierarchy
module OH = Nvsc_oracle.Oracle_hierarchy

(* --- timing ------------------------------------------------------------ *)

let time f =
  let t0 = Sys.time () in
  f ();
  Sys.time () -. t0

let best_of reps f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let dt = time f in
    if dt < !best then best := dt
  done;
  !best

(* Interleave the two sides rep by rep and report each side's best. *)
let best_of_pair reps f g =
  ignore (f ());
  ignore (g ());
  let bf = ref infinity and bg = ref infinity in
  for _ = 1 to reps do
    let df = time f in
    let dg = time g in
    if df < !bf then bf := df;
    if dg < !bg then bg := dg
  done;
  (!bf, !bg)

(* --- results ----------------------------------------------------------- *)

type result = { name : string; unit_ : string; value : float; extra : (string * float) list }

let results : result list ref = ref []

let report ?(extra = []) name unit_ value =
  results := { name; unit_; value; extra } :: !results;
  Printf.printf "%-28s %10.3f %s%s\n%!" name value unit_
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf "  %s=%.3f" k v) extra))

let write_json path ~quick =
  let oc = open_out path in
  let field (k, v) = Printf.sprintf "\"%s\": %.6f" k v in
  let entry r =
    String.concat ", "
      (Printf.sprintf "\"name\": \"%s\"" r.name
      :: Printf.sprintf "\"unit\": \"%s\"" r.unit_
      :: field ("value", r.value)
      :: List.map field r.extra)
  in
  Printf.fprintf oc "{\n  \"suite\": \"nvsc-kernels\",\n  \"quick\": %b,\n  \"results\": [\n%s\n  ]\n}\n"
    quick
    (String.concat ",\n"
       (List.rev_map (fun r -> "    {" ^ entry r ^ "}") !results));
  close_out oc

(* --- stream harnesses -------------------------------------------------- *)

let fill_log log gen =
  let s = Trace_log.sink log in
  ignore (Trace_gen.into gen s);
  Sink.flush s

let run_hierarchy log () =
  let h = Hierarchy.create ~sink:(Sink.null ()) () in
  let s = Sink.create ~capacity:65536 (Hierarchy.consume h) in
  Trace_log.replay_batch log s;
  Sink.flush s;
  Hierarchy.drain h

let run_oracle log () =
  let h = OH.create ~sink:(Sink.null ()) () in
  let s = Sink.create ~capacity:65536 (OH.consume h) in
  Trace_log.replay_batch log s;
  Sink.flush s;
  OH.drain h

let filter_bench ~reps name log =
  let refs = float_of_int (Trace_log.length log) in
  let opt, oracle = best_of_pair reps (run_hierarchy log) (run_oracle log) in
  report name "ns/ref"
    (opt *. 1e9 /. refs)
    ~extra:
      [
        ("oracle_ns_per_ref", oracle *. 1e9 /. refs);
        ("speedup", oracle /. opt);
        ("refs", refs);
      ]

(* --- suite ------------------------------------------------------------- *)

let run ~quick ~out =
  let reps = if quick then 3 else 7 in
  let n_refs = if quick then 200_000 else 1_000_000 in

  (* cache level: hit path (resident line, alternating read/write) *)
  let () =
    let c = Cache.create Cache_params.paper_l1d in
    ignore (Cache.write c ~line:3);
    let iters = if quick then 2_000_000 else 10_000_000 in
    let dt =
      best_of reps (fun () ->
          for _ = 1 to iters do
            ignore (Cache.read c ~line:3);
            ignore (Cache.write c ~line:3)
          done)
    in
    report "cache.hit" "ns/op" (dt *. 1e9 /. float_of_int (2 * iters))
  in

  (* cache level: miss/evict churn (streaming distinct lines) *)
  let () =
    let c = Cache.create Cache_params.paper_l1d in
    let iters = if quick then 1_000_000 else 4_000_000 in
    let dt =
      best_of reps (fun () ->
          for i = 1 to iters do
            ignore (Cache.read c ~line:(i * 7))
          done)
    in
    report "cache.miss-churn" "ns/op" (dt *. 1e9 /. float_of_int iters)
  in

  (* hierarchy filter stage on synthetic stream shapes *)
  let () =
    let log = Trace_log.create ~initial_capacity:n_refs () in
    fill_log log
      (Trace_gen.zipf ~seed:11 ~lines:65536 ~write_fraction:0.3 ~n:n_refs ());
    filter_bench ~reps "filter.zipf" log
  in
  let () =
    let log = Trace_log.create ~initial_capacity:n_refs () in
    fill_log log (Trace_gen.sequential ~n:n_refs ());
    filter_bench ~reps "filter.sequential" log
  in
  let () =
    let log = Trace_log.create ~initial_capacity:n_refs () in
    fill_log log (Trace_gen.strided ~stride_lines:3 ~n:n_refs ());
    filter_bench ~reps "filter.strided" log
  in

  (* the captured gtc reference stream: what the pipeline's filter stage
     actually consumes (word-granular, object-interleaved) *)
  let () =
    let log = Trace_log.create ~initial_capacity:2_000_000 () in
    let ctx = Nvsc_appkit.Ctx.create () in
    Nvsc_appkit.Ctx.add_sink ctx (Trace_log.sink ~name:"gtc-capture" log);
    let (module A : Nvsc_apps.Workload.APP) =
      Option.get (Nvsc_apps.Apps.find "gtc")
    in
    let scale = if quick then 0.1 else 0.3 in
    let iterations = if quick then 1 else 3 in
    A.run ~scale ctx ~iterations;
    Nvsc_appkit.Ctx.flush_refs ctx;
    filter_bench ~reps "filter.gtc-stream" log
  in

  (* DRAM controller submit path on a line-granular trace *)
  let () =
    let n = if quick then 100_000 else 400_000 in
    let tech = Nvsc_nvram.Technology.get Nvsc_nvram.Technology.DDR3 in
    let dt =
      best_of reps (fun () ->
          let c = Nvsc_dramsim.Controller.create ~tech () in
          for i = 0 to n - 1 do
            Nvsc_dramsim.Controller.submit_ref c ~addr:(i * 64 * 17)
              ~op:(if i land 3 = 0 then Access.Write else Access.Read)
          done;
          Nvsc_dramsim.Controller.flush c)
    in
    report "controller.submit" "ns/txn" (dt *. 1e9 /. float_of_int n)
  in

  (* counter recording (dense per-object slots) *)
  let () =
    let c = Nvsc_memtrace.Counters.create () in
    Nvsc_memtrace.Counters.set_iteration c 1;
    let iters = if quick then 2_000_000 else 10_000_000 in
    let dt =
      best_of reps (fun () ->
          for i = 1 to iters do
            Nvsc_memtrace.Counters.record c ~obj_id:(i land 7)
              ~op:(if i land 1 = 0 then Access.Read else Access.Write)
          done)
    in
    report "counters.record" "ns/op" (dt *. 1e9 /. float_of_int iters)
  in

  (* end-to-end: the scavenger pipeline at the bechamel bench's quick
     configuration (bench/main.ml "pipeline:scavenger-gtc") *)
  let () =
    let app = Option.get (Nvsc_apps.Apps.find "gtc") in
    let config =
      Nvsc_core.Scavenger.Config.(
        default |> with_scale 0.1 |> with_iterations 1)
    in
    let dt =
      best_of (if quick then 5 else 9) (fun () ->
          ignore (Nvsc_core.Scavenger.run config app))
    in
    report "pipeline.scavenger-gtc" "ms" (dt *. 1e3)
  in

  write_json out ~quick;
  Printf.printf "wrote %s\n" out

let () =
  let quick = ref false and out = ref "BENCH_kernels.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ ->
      Printf.eprintf "kernels: unknown argument %s (usage: [--quick] [--out FILE])\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  run ~quick:!quick ~out:!out
