(* Micro-benchmark suite for the allocation-free simulation kernels
   (DESIGN.md "Kernel fast paths"): cache lookup hit/miss costs, the
   hierarchy filter stage on three stream shapes plus the captured gtc
   reference stream — each against the pre-optimization oracle in
   test/oracle/ — the DRAM controller submit path, counter recording, and
   the end-to-end scavenger pipeline.

   Results go to a machine-readable JSON file (default BENCH_kernels.json;
   CI's perf-smoke job runs [--quick] and uploads it).  Timings use
   [Sys.time] best-of-N: the suite is single-threaded and each measured
   body runs long enough that clock granularity is noise.  Speedup ratios
   are measured interleaved (optimized / oracle alternating) so frequency
   drift hits both sides equally. *)

module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink
module Trace_log = Nvsc_memtrace.Trace_log
module Trace_gen = Nvsc_memtrace.Trace_gen
module Cache = Nvsc_cachesim.Cache
module Cache_params = Nvsc_cachesim.Cache_params
module Hierarchy = Nvsc_cachesim.Hierarchy
module Shard_filter = Nvsc_cachesim.Shard_filter
module OH = Nvsc_oracle.Oracle_hierarchy

(* --- timing ------------------------------------------------------------ *)

let time f =
  let t0 = Sys.time () in
  f ();
  Sys.time () -. t0

let best_of reps f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let dt = time f in
    if dt < !best then best := dt
  done;
  !best

(* Interleave the two sides rep by rep and report each side's best. *)
let best_of_pair reps f g =
  ignore (f ());
  ignore (g ());
  let bf = ref infinity and bg = ref infinity in
  for _ = 1 to reps do
    let df = time f in
    let dg = time g in
    if df < !bf then bf := df;
    if dg < !bg then bg := dg
  done;
  (!bf, !bg)

(* --- results ----------------------------------------------------------- *)

type result = { name : string; unit_ : string; value : float; extra : (string * float) list }

let results : result list ref = ref []

let report ?(extra = []) name unit_ value =
  results := { name; unit_; value; extra } :: !results;
  Printf.printf "%-28s %10.3f %s%s\n%!" name value unit_
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf "  %s=%.3f" k v) extra))

let write_json path ~quick =
  let oc = open_out path in
  let field (k, v) = Printf.sprintf "\"%s\": %.6f" k v in
  let entry r =
    String.concat ", "
      (Printf.sprintf "\"name\": \"%s\"" r.name
      :: Printf.sprintf "\"unit\": \"%s\"" r.unit_
      :: field ("value", r.value)
      :: List.map field r.extra)
  in
  Printf.fprintf oc "{\n  \"suite\": \"nvsc-kernels\",\n  \"quick\": %b,\n  \"results\": [\n%s\n  ]\n}\n"
    quick
    (String.concat ",\n"
       (List.rev_map (fun r -> "    {" ^ entry r ^ "}") !results));
  close_out oc

(* --- stream harnesses -------------------------------------------------- *)

let fill_log log gen =
  let s = Trace_log.sink log in
  ignore (Trace_gen.into gen s);
  Sink.flush s

let run_hierarchy log () =
  let h = Hierarchy.create ~sink:(Sink.null ()) () in
  let s = Sink.create ~capacity:65536 (Hierarchy.consume h) in
  Trace_log.replay_batch log s;
  Sink.flush s;
  Hierarchy.drain h

let run_oracle log () =
  let h = OH.create ~sink:(Sink.null ()) () in
  let s = Sink.create ~capacity:65536 (OH.consume h) in
  Trace_log.replay_batch log s;
  Sink.flush s;
  OH.drain h

let filter_bench ~reps name log =
  let refs = float_of_int (Trace_log.length log) in
  let opt, oracle = best_of_pair reps (run_hierarchy log) (run_oracle log) in
  report name "ns/ref"
    (opt *. 1e9 /. refs)
    ~extra:
      [
        ("oracle_ns_per_ref", oracle *. 1e9 /. refs);
        ("speedup", oracle /. opt);
        ("refs", refs);
      ]

(* --- suite ------------------------------------------------------------- *)

let run ~quick ~out =
  let reps = if quick then 3 else 7 in
  let n_refs = if quick then 200_000 else 1_000_000 in

  (* cache level: hit path (resident line, alternating read/write) *)
  let () =
    let c = Cache.create Cache_params.paper_l1d in
    ignore (Cache.write c ~line:3);
    let iters = if quick then 2_000_000 else 10_000_000 in
    let dt =
      best_of reps (fun () ->
          for _ = 1 to iters do
            ignore (Cache.read c ~line:3);
            ignore (Cache.write c ~line:3)
          done)
    in
    report "cache.hit" "ns/op" (dt *. 1e9 /. float_of_int (2 * iters))
  in

  (* cache level: miss/evict churn (streaming distinct lines) *)
  let () =
    let c = Cache.create Cache_params.paper_l1d in
    let iters = if quick then 1_000_000 else 4_000_000 in
    let dt =
      best_of reps (fun () ->
          for i = 1 to iters do
            ignore (Cache.read c ~line:(i * 7))
          done)
    in
    report "cache.miss-churn" "ns/op" (dt *. 1e9 /. float_of_int iters)
  in

  (* hierarchy filter stage on synthetic stream shapes *)
  let () =
    let log = Trace_log.create ~initial_capacity:n_refs () in
    fill_log log
      (Trace_gen.zipf ~seed:11 ~lines:65536 ~write_fraction:0.3 ~n:n_refs ());
    filter_bench ~reps "filter.zipf" log
  in
  let () =
    let log = Trace_log.create ~initial_capacity:n_refs () in
    fill_log log (Trace_gen.sequential ~n:n_refs ());
    filter_bench ~reps "filter.sequential" log
  in
  let () =
    let log = Trace_log.create ~initial_capacity:n_refs () in
    fill_log log (Trace_gen.strided ~stride_lines:3 ~n:n_refs ());
    filter_bench ~reps "filter.strided" log
  in

  (* word-granular run-heavy streams: the access shape the line-run
     coalescer targets (ISSUE 10).  Trace_gen's synthetics are
     line-granular — consecutive references never share a line, so runs
     never form — hence these streams are built locally: a run of word
     touches per line, the line chosen per shape, with writes mixed into
     the run tails. *)
  let coalesced_log pick =
    let log = Trace_log.create ~initial_capacity:n_refs () in
    let i = ref 0 and k = ref 0 in
    while !i < n_refs do
      let line, len = pick !k in
      incr k;
      let len = min len (n_refs - !i) in
      for j = 0 to len - 1 do
        Trace_log.record_raw log
          ~addr:((line * 64) + ((j * 8) land 63))
          ~size:8
          ~op:(if (j + line) land 7 = 3 then Access.Write else Access.Read)
      done;
      i := !i + len
    done;
    log
  in
  let coal_seq_log = coalesced_log (fun k -> (k land 0xFFFFF, 8)) in
  let () =
    let lcg = ref 97 in
    let next () =
      lcg := (!lcg * 1103515245) + 12345;
      (!lcg lsr 9) land 0xFFFFFF
    in
    let log =
      coalesced_log (fun _ ->
          let r = next () in
          (* 3/4 of the runs in a 256-line hot set, zipf-flavoured *)
          let line = if r land 3 < 3 then r land 0xFF else r land 0xFFFF in
          (line, 2 + (r land 15)))
    in
    filter_bench ~reps "filter.coalesced-zipf" log
  in
  let () = filter_bench ~reps "filter.coalesced-sequential" coal_seq_log in
  let () =
    let log = coalesced_log (fun k -> ((k * 3) land 0xFFFFF, 8)) in
    filter_bench ~reps "filter.coalesced-strided" log
  in

  (* the captured gtc reference stream: what the pipeline's filter stage
     actually consumes (word-granular, object-interleaved) *)
  let gtc_log =
    let log = Trace_log.create ~initial_capacity:2_000_000 () in
    let ctx = Nvsc_appkit.Ctx.create () in
    Nvsc_appkit.Ctx.add_sink ctx (Trace_log.sink ~name:"gtc-capture" log);
    let (module A : Nvsc_apps.Workload.APP) =
      Option.get (Nvsc_apps.Apps.find "gtc")
    in
    (* even --quick captures a few hundred thousand references so the
       sharded-stage numbers are not dominated by fixed per-run cost
       (cache-array creation and the end-of-trace drain walk) *)
    let scale = if quick then 0.2 else 0.3 in
    let iterations = if quick then 2 else 3 in
    A.run ~scale ctx ~iterations;
    Nvsc_appkit.Ctx.flush_refs ctx;
    log
  in
  let () = filter_bench ~reps "filter.gtc-stream" gtc_log in

  (* sharded filter stage over the same captured stream: the producer
     partitions each batch once ([Shard_filter.partition] — in the live
     pipeline that scan overlaps with generating the next batch), then k
     set-partitioned Shard_filters each consume only their own index
     list from the shared (Bigarray-backed) batch (ISSUE 9 tentpole).
     Two numbers per width: [value] is the critical path — the slowest
     shard's consume-stage busy time over its pre-built index list,
     measured with each shard run alone so another domain's timeslice
     never counts against it — which is what a k-core machine pays for
     the stage and is host-independent; [wall_ns_per_ref] is the
     measured wall time of the real k-domain team end to end (create,
     partition, consume, drain) on THIS host (≈ serial on one core),
     and [partition_ns_per_ref] the producer-side scan.  The stage baseline
     for [projected_speedup] is the serial pipeline's Hierarchy filter
     over the identical batch; shard:scaling summarises the 4-shard
     projection. *)
  (* a single shard pass is sub-millisecond at --quick: time with the
     monotonic ns clock, not [Sys.time]'s coarse process-time ticks *)
  let best_ns reps f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Nvsc_obs.Clock.now_ns () in
      f ();
      let dt = float_of_int (Nvsc_obs.Clock.now_ns () - t0) in
      if dt < !best then best := dt
    done;
    !best
  in
  let timed f =
    let t0 = Nvsc_obs.Clock.now_ns () in
    f ();
    float_of_int (Nvsc_obs.Clock.now_ns () - t0)
  in
  (* Time the consume stage only, on a fresh (cold) simulator each
     rep: hierarchy creation and the end-of-trace drain happen once
     per *run*, not per batch, so they amortize to nothing over a
     real experiment and would only blur the per-reference stage cost
     here.  The serial baseline is re-sampled INTERLEAVED with each
     width's shard samples (same rep loop, samples milliseconds
     apart) so host frequency drift cancels out of the speedup ratio
     — the same discipline the oracle comparisons use. *)
  let shard_stage ~reps batch ~len ~shards =
    let serial_sample () =
      let h = Hierarchy.create ~sink:(Sink.null ()) () in
      timed (fun () -> Hierarchy.consume h batch ~first:0 ~n:len)
    in
      let index_bufs = Array.init shards (fun _ -> Array.make len 0) in
      let counts = Array.make shards 0 in
      (* the team's load-balanced residue assignment, sampled exactly as
         the live pipeline does on its first flush *)
      let team =
        Array.init shards (fun shard -> Shard_filter.create ~shards ~shard ())
      in
      if shards > 1 then Shard_filter.rebalance team batch ~first:0 ~n:len;
      let geometry = team.(0) in
      let fresh_filter shard =
        let sf = Shard_filter.create ~shards ~shard () in
        Shard_filter.use_assignment sf (Shard_filter.assignment geometry);
        sf
      in
      (* measured at every width, including 1: the live pipeline skips
         the scan at width 1, but reporting the single-list passthrough
         cost here (instead of a constant 0.0) keeps the field
         comparable across widths *)
      let partition_ns =
        best_ns reps (fun () ->
            Shard_filter.partition geometry batch ~first:0 ~n:len ~index_bufs
              ~counts)
      in
      let shard_consume shard sf =
        if shards = 1 then Shard_filter.consume sf batch ~first:0 ~n:len ~base:0
        else
          Shard_filter.consume_selected sf batch ~idxs:index_bufs.(shard)
            ~m:counts.(shard) ~first:0 ~base:0
      in
      let shard_sample shard () =
        let sf = fresh_filter shard in
        timed (fun () -> shard_consume shard sf)
      in
      let shard_job shard () =
        let sf = fresh_filter shard in
        shard_consume shard sf;
        Shard_filter.drain sf ~base:len
      in
      (* warm-up, then interleaved best-of: serial and every shard
         sampled inside the same rep *)
      ignore (serial_sample ());
      for shard = 0 to shards - 1 do
        ignore (shard_sample shard ())
      done;
      let serial = ref infinity in
      let busy = Array.make shards infinity in
      for _ = 1 to reps do
        let s = serial_sample () in
        if s < !serial then serial := s;
        for shard = 0 to shards - 1 do
          let b = shard_sample shard () in
          if b < busy.(shard) then busy.(shard) <- b
        done
      done;
      (* critical path: max over shards of each shard's isolated best *)
      let crit = Array.fold_left max 0. busy in
      (* wall: producer partition plus the real domain team, all shards
         concurrent *)
      let wall = ref infinity in
      for _ = 1 to reps do
        let dt =
          timed (fun () ->
              if shards = 1 then shard_job 0 ()
              else begin
                Shard_filter.partition geometry batch ~first:0 ~n:len
                  ~index_bufs ~counts;
                ignore
                  (Nvsc_team.Pool.map ~jobs:shards
                     (fun shard -> shard_job shard ())
                     (Array.init shards Fun.id))
              end)
        in
        if dt < !wall then wall := dt
      done;
      (!wall, crit, partition_ns, !serial)
  in
  let () =
    let batch, len = Trace_log.as_batch gtc_log in
    let refs = float_of_int len in
    let reps = 2 * reps in
    let scaling =
      List.map
        (fun shards ->
          let wall, crit, partition_ns, serial =
            shard_stage ~reps batch ~len ~shards
          in
          report
            (Printf.sprintf "shard:filter-gtc-%d" shards)
            "ns/ref" (crit /. refs)
            ~extra:
              [
                ("wall_ns_per_ref", wall /. refs);
                ("serial_ns_per_ref", serial /. refs);
                ("partition_ns_per_ref", partition_ns /. refs);
                ("projected_speedup", serial /. crit);
                ("refs", refs);
              ];
          (shards, serial /. crit))
        [ 1; 2; 4; 8 ]
    in
    report "shard:scaling" "x"
      (List.assoc 4 scaling)
      ~extra:
        (List.map
           (fun (shards, s) ->
             (Printf.sprintf "projected_speedup_%d" shards, s))
           scaling)
  in

  (* Gref/s projection (ISSUE 10): the filter stage on the run-heavy word
     stream — line-run coalescing collapsing each run to one cache probe
     — sharded 8 wide; the critical-path cost per reference inverted into
     throughput.  The partition scan is excluded from the critical path
     for the same reason as in shard:filter-gtc: it runs on the producer
     overlapped with generating the next batch. *)
  let () =
    let batch, len = Trace_log.as_batch coal_seq_log in
    let refs = float_of_int len in
    let _wall, crit, partition_ns, serial =
      shard_stage ~reps:(2 * reps) batch ~len ~shards:8
    in
    report "gref:projection" "Gref/s"
      (refs /. crit)
      ~extra:
        [
          ("crit_ns_per_ref", crit /. refs);
          ("serial_ns_per_ref", serial /. refs);
          ("partition_ns_per_ref", partition_ns /. refs);
          ("projected_speedup", serial /. crit);
          ("refs", refs);
        ]
  in

  (* DRAM controller submit path on a line-granular trace *)
  let () =
    let n = if quick then 100_000 else 400_000 in
    let tech = Nvsc_nvram.Technology.get Nvsc_nvram.Technology.DDR3 in
    let dt =
      best_of reps (fun () ->
          let c = Nvsc_dramsim.Controller.create ~tech () in
          for i = 0 to n - 1 do
            Nvsc_dramsim.Controller.submit_ref c ~addr:(i * 64 * 17)
              ~op:(if i land 3 = 0 then Access.Write else Access.Read)
          done;
          Nvsc_dramsim.Controller.flush c)
    in
    report "controller.submit" "ns/txn" (dt *. 1e9 /. float_of_int n)
  in

  (* Bank-sharded controller decomposition (ISSUE 10 tentpole): serial
     FCFS submit vs the classify/replay pipeline.  The team overlaps the
     stages — slice [i] replays on its own domain while the workers
     classify slice [i+1] — so on a host with one core per domain the
     steady-state cost per transaction is the slower stage:
     [value] = max(classify critical path, replay).  Both stage costs
     are sampled in isolation on this domain (probes for the workers,
     [replay_pending] for the merge/replay), interleaved
     rep by rep with the serial baseline; [sum_ns_per_txn] is the
     no-overlap bound and [wall_ns_per_txn] the whole team end to end
     on THIS host. *)
  let () =
    let module C = Nvsc_dramsim.Controller in
    let module CT = Nvsc_dramsim.Controller_team in
    let n = if quick then 100_000 else 400_000 in
    let tech = Nvsc_nvram.Technology.get Nvsc_nvram.Technology.DDR3 in
    (* the dram-team differential's mixed stream: row-local sweeps plus a
       pseudo-random scatter, reads and writes *)
    let batch = Sink.Batch.create n in
    let lcg = ref 424242 in
    let next () =
      lcg := (!lcg * 1103515245) + 12345;
      (!lcg lsr 11) land 0xFFFFFFF
    in
    for i = 0 to n - 1 do
      let addr =
        if i land 7 < 5 then (i / 8 * 64 * 17) land 0x3FFFFC0
        else next () land 0x7FFFFC0
      in
      Sink.Batch.set batch i ~addr ~size:64
        ~op:(if i land 5 = 0 then Access.Write else Access.Read)
    done;
    let fn = float_of_int n in
    let serial_sample () =
      let c = C.create ~scheduler:C.Fcfs ~tech () in
      timed (fun () ->
          C.consume c batch ~first:0 ~n;
          C.flush c)
    in
    List.iter
      (fun shards ->
        ignore (serial_sample ());
        let serial = ref infinity and wall = ref infinity in
        let crit = ref infinity and replay = ref infinity in
        for _ = 1 to reps do
          (* drain accumulated garbage so a major collection triggered by
             an earlier sample's dead team doesn't land inside a timed
             region *)
          Gc.major ();
          let s = serial_sample () in
          if s < !serial then serial := s;
          (* classify critical path: probe each worker inline on this
             domain, one at a time, so one-core timesharing behind the
             slice barrier cannot inflate the per-worker busy time *)
          let team = CT.create ~shards ~tech () in
          Gc.major ();
          let c = ref 0. in
          for sid = 0 to shards - 1 do
            let t0 = Nvsc_obs.Clock.now_ns () in
            CT.classify_probe team ~sid batch ~first:0 ~n ~base:0;
            let dt = float_of_int (Nvsc_obs.Clock.now_ns () - t0) in
            if dt > !c then c := dt
          done;
          if !c < !crit then crit := !c;
          (* the probes produced the complete event set; [replay_pending]
             is exactly the replay stage — merge plus
             [issue_classified] — with no stats construction attached *)
          CT.finish team;
          Gc.major ();
          let t1 = Nvsc_obs.Clock.now_ns () in
          CT.replay_pending team;
          let r = float_of_int (Nvsc_obs.Clock.now_ns () - t1) in
          if r < !replay then replay := r
        done;
        (* whole team end to end on THIS host, workers on real domains —
           sampled outside the stage loop so its garbage and domain
           churn stay out of the stage timings *)
        for _ = 1 to 2 do
          let team2 = CT.create ~shards ~tech () in
          let t0 = Nvsc_obs.Clock.now_ns () in
          CT.consume team2 batch ~first:0 ~n;
          ignore (CT.stats team2);
          let w = float_of_int (Nvsc_obs.Clock.now_ns () - t0) in
          if w < !wall then wall := w
        done;
        let projected = Float.max !crit !replay in
        report
          (Printf.sprintf "dram:submit-sharded-%d" shards)
          "ns/txn" (projected /. fn)
          ~extra:
            [
              ("classify_crit_ns_per_txn", !crit /. fn);
              ("replay_ns_per_txn", !replay /. fn);
              ("sum_ns_per_txn", (!crit +. !replay) /. fn);
              ("wall_ns_per_txn", !wall /. fn);
              ("serial_ns_per_txn", !serial /. fn);
              ("projected_speedup", !serial /. projected);
              ("txns", fn);
            ])
      [ 1; 2; 4 ]
  in

  (* counter recording (dense per-object slots) *)
  let () =
    let c = Nvsc_memtrace.Counters.create () in
    Nvsc_memtrace.Counters.set_iteration c 1;
    let iters = if quick then 2_000_000 else 10_000_000 in
    let dt =
      best_of reps (fun () ->
          for i = 1 to iters do
            Nvsc_memtrace.Counters.record c ~obj_id:(i land 7)
              ~op:(if i land 1 = 0 then Access.Read else Access.Write)
          done)
    in
    report "counters.record" "ns/op" (dt *. 1e9 /. float_of_int iters)
  in

  (* end-to-end: the scavenger pipeline at the bechamel bench's quick
     configuration (bench/main.ml "pipeline:scavenger-gtc") *)
  let () =
    let app = Option.get (Nvsc_apps.Apps.find "gtc") in
    let config =
      Nvsc_core.Scavenger.Config.(
        default |> with_scale 0.1 |> with_iterations 1)
    in
    let dt =
      best_of (if quick then 5 else 9) (fun () ->
          ignore (Nvsc_core.Scavenger.run config app))
    in
    report "pipeline.scavenger-gtc" "ms" (dt *. 1e3)
  in

  write_json out ~quick;
  Printf.printf "wrote %s\n" out

let () =
  let quick = ref false and out = ref "BENCH_kernels.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ ->
      Printf.eprintf "kernels: unknown argument %s (usage: [--quick] [--out FILE])\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  run ~quick:!quick ~out:!out
