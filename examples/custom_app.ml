(* Instrumenting your own application.

   The mini-apps shipped with the library are not special: anything written
   against Nvsc_appkit can be analyzed.  This example builds a small
   conjugate-gradient solver on a 2-D Poisson problem, runs it under
   NV-Scavenger, and prints the resulting per-object metrics — showing how
   the three NVRAM metrics (read/write ratio, size, reference rate) fall
   out of ordinary numerical code.

   Run with: dune exec examples/custom_app.exe *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module Mem_object = Nvsc_memtrace.Mem_object

(* A 5-point Laplacian apply written as instrumented code: the stencil
   coefficients live on the routine's stack frame, the vectors in global
   memory. *)
let apply_laplacian ctx ~n ~(x : Farray.t) ~(y : Farray.t) =
  Ctx.call ctx ~routine:"apply_laplacian" ~frame_words:8 (fun frame ->
      let coef = Farray.stack ctx frame 5 in
      List.iteri (fun i c -> Farray.set coef i c) [ 4.; -1.; -1.; -1.; -1. ];
      for row = 1 to n - 2 do
        for col = 1 to n - 2 do
          let at r c = Farray.get x ((r * n) + c) in
          let v =
            (Farray.get coef 0 *. at row col)
            +. (Farray.get coef 1 *. at (row - 1) col)
            +. (Farray.get coef 2 *. at (row + 1) col)
            +. (Farray.get coef 3 *. at row (col - 1))
            +. (Farray.get coef 4 *. at row (col + 1))
          in
          Farray.set y ((row * n) + col) v;
          Ctx.flops ctx 9
        done
      done)

module Poisson_cg : Nvsc_apps.Workload.APP = struct
  let name = "poisson_cg"
  let description = "2-D Poisson solved by conjugate gradients"
  let input_description = "64x64 grid, 5-point stencil"
  let paper_footprint_mb = 0.

  let run ?(scale = 1.0) ctx ~iterations =
    let n = Nvsc_apps.Workload.scaled scale 64 in
    let size = n * n in
    Ctx.set_phase ctx Mem_object.Pre;
    let x = Farray.global ctx ~name:"x_solution" size in
    let b = Farray.global ctx ~name:"b_rhs" size in
    let r = Farray.global ctx ~name:"r_residual" size in
    let p = Farray.heap ctx ~site:"p_direction" size in
    let ap = Farray.heap ctx ~site:"ap_scratch" size in
    (* the right-hand side is computed once and only read afterwards:
       a read-only object in the making *)
    Farray.init ctx b (fun i -> sin (float_of_int i /. 50.));
    Farray.fill ctx x 0.;
    Farray.copy_into ctx ~src:b ~dst:r;
    for iter = 1 to iterations do
      Ctx.set_phase ctx (Mem_object.Main iter);
      apply_laplacian ctx ~n ~x:p ~y:ap;
      let alpha = 0.1 /. float_of_int iter in
      Nvsc_apps.Workload.saxpy ctx ~alpha ~x:p ~y:x;
      Nvsc_apps.Workload.saxpy ctx ~alpha:(-.alpha) ~x:ap ~y:r;
      let beta = Nvsc_apps.Workload.dot ctx r r /. float_of_int size in
      ignore beta;
      Nvsc_apps.Workload.saxpy ctx ~alpha:0.5 ~x:r ~y:p;
      (* converge against the read-only right-hand side *)
      ignore (Nvsc_apps.Workload.dot ctx r b)
    done;
    Ctx.set_phase ctx Mem_object.Post;
    ignore (Farray.sum ctx x)
end

let () =
  let result =
    Nvsc_core.Scavenger.run
      Nvsc_core.Scavenger.Config.(default |> with_iterations 8)
      (module Poisson_cg)
  in
  Format.printf "analyzed %s (%s)@.@." result.app_name result.description;
  Nvsc_core.Object_analysis.pp_report Format.std_formatter
    (Nvsc_core.Object_analysis.analyze result);
  Format.printf "@.stack summary:@.";
  Nvsc_core.Stack_analysis.pp_summary_table Format.std_formatter
    [ Nvsc_core.Stack_analysis.summarize result ];
  (* the right-hand side must have come out read-only *)
  let rhs =
    List.find
      (fun (m : Nvsc_core.Object_metrics.t) ->
        m.obj.Mem_object.name = "b_rhs")
      result.metrics
  in
  Format.printf "@.b_rhs is read-only in the main loop: %b@."
    (Nvsc_core.Object_metrics.is_read_only rhs)
