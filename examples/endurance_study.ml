(* Write-endurance study.

   The paper's third NVRAM limitation (§II) is bounded write endurance
   (PCRAM: ~10^8-10^9.7 writes per cell).  This example takes GTC — the
   most write-intensive of the four applications — filters its traffic
   through the cache hierarchy, feeds the main-memory *writes* into the
   per-line wear model, and asks: if this iteration rate were sustained,
   how long would each technology last, with and without wear levelling?

   Run with: dune exec examples/endurance_study.exe *)

module Endurance = Nvsc_nvram.Endurance
module Tech = Nvsc_nvram.Technology
module Trace_log = Nvsc_memtrace.Trace_log
module Access = Nvsc_memtrace.Access

let () =
  let result =
    Nvsc_core.Scavenger.run
      Nvsc_core.Scavenger.Config.(
        default |> with_scale 0.5 |> with_iterations 5 |> with_trace true)
      (Option.get (Nvsc_apps.Apps.find "gtc"))
  in
  let trace = Option.get result.mem_trace in
  Format.printf "%s main-memory trace: %d writes of %d accesses@.@."
    result.app_name (Trace_log.writes trace) (Trace_log.length trace);

  (* wear units: 256-byte NVRAM lines covering the (scaled) footprint *)
  let line_bytes = 256 in
  let lines = 1 + (result.footprint_bytes / line_bytes) in

  (* The simulated run covers [iterations] time steps; a production run
     sustains that write traffic continuously.  Assume 10 time steps per
     wall-clock second, a typical strong-scaled rate. *)
  let steps_per_second = 10. in
  let writes_per_second =
    float_of_int (Trace_log.writes trace)
    /. float_of_int result.iterations *. steps_per_second
  in
  Format.printf "sustained write rate: %.2e line-writes/s over %d lines@.@."
    writes_per_second lines;

  List.iter
    (fun tech_id ->
      let tech = Tech.get tech_id in
      let e = Endurance.create ~tech ~lines in
      Trace_log.replay trace (fun a ->
          if Access.is_write a then
            Endurance.record_write e
              ~line:(a.Access.addr / line_bytes mod lines));
      let years levelled =
        Endurance.lifetime_years e ~write_rate_per_s:writes_per_second
          ~wear_levelled:levelled
      in
      Format.printf
        "%-8s endurance %.1e  wear imbalance %5.1fx  lifetime: %10.1f years \
         levelled, %10.3f years unlevelled@."
        tech.Tech.name tech.write_endurance (Endurance.wear_imbalance e)
        (years true) (years false))
    [ Tech.PCRAM; Tech.STTRAM; Tech.MRAM; Tech.Flash ];

  (* Quantify what wear levelling buys: replay the same write stream
     through Start-Gap and table-based remapping. *)
  Format.printf "@.wear levelling on the same write stream (PCRAM lines):@.";
  let schemes =
    [
      ("none", None);
      ( "start-gap/100",
        Some (Nvsc_nvram.Wear_leveling.Start_gap { gap_move_interval = 100 }) );
      ( "table/256",
        Some (Nvsc_nvram.Wear_leveling.Table_based { swap_interval = 256 }) );
    ]
  in
  List.iter
    (fun (label, scheme) ->
      match scheme with
      | None ->
        let e =
          Endurance.create ~tech:(Tech.get Tech.PCRAM) ~lines
        in
        Trace_log.replay trace (fun a ->
            if Access.is_write a then
              Endurance.record_write e ~line:(a.Access.addr / line_bytes mod lines));
        Format.printf "  %-14s imbalance %6.2fx@." label
          (Endurance.wear_imbalance e)
      | Some scheme ->
        let wl = Nvsc_nvram.Wear_leveling.create scheme ~lines in
        Trace_log.replay trace (fun a ->
            if Access.is_write a then
              ignore
                (Nvsc_nvram.Wear_leveling.write wl
                   (a.Access.addr / line_bytes mod lines)));
        Format.printf "  %-14s imbalance %6.2fx (+%.2f%% writes)@." label
          (Nvsc_nvram.Wear_leveling.wear_imbalance wl)
          (100. *. Nvsc_nvram.Wear_leveling.extra_write_overhead wl))
    schemes;
  Format.printf
    "@.(the imbalance factor is why real PCRAM controllers ship start-gap \
     or table-based wear levelling)@."
