(* Quickstart: profile one application with NV-Scavenger and print its
   NVRAM opportunities.

   Run with: dune exec examples/quickstart.exe *)

module Scavenger = Nvsc_core.Scavenger
module OM = Nvsc_core.Object_metrics
module Suitability = Nvsc_nvram.Suitability

let () =
  (* 1. Run the CAM mini-app through the full pipeline: instrumentation,
     object attribution, and the Table II cache hierarchy. *)
  let result =
    Scavenger.run
      Scavenger.Config.(
        default |> with_scale 0.5 |> with_iterations 5 |> with_trace true)
      (Option.get (Nvsc_apps.Apps.find "cam"))
  in
  Format.printf "Profiled %s: %d main-loop references over %d iterations@."
    result.app_name result.total_main_refs result.iterations;
  Format.printf "footprint (scaled run): %a@.@." Nvsc_util.Units.pp_bytes
    result.footprint_bytes;

  (* 2. The fast stack method: Table V's row for this app. *)
  Nvsc_core.Stack_analysis.pp_summary_table Format.std_formatter
    [ Nvsc_core.Stack_analysis.summarize result ];
  Format.printf "@.";

  (* 3. Per-object metrics and NVRAM verdicts for a category-2 device. *)
  let metrics = Scavenger.global_and_heap_metrics result in
  Format.printf "NVRAM verdicts (STTRAM-class target):@.";
  List.iter
    (fun (m : OM.t) ->
      let verdict, reason =
        Suitability.explain
          ~category:Nvsc_nvram.Technology.Cat2_long_write
          (OM.suitability_metrics m)
      in
      Format.printf "  %-18s %-16s %s@." m.obj.Nvsc_memtrace.Mem_object.name
        (Format.asprintf "%a" Suitability.pp_verdict verdict)
        reason)
    (List.filter
       (fun (m : OM.t) -> OM.size_bytes m >= 32 * 1024)
       metrics);

  (* 4. Power: what would this trace cost on each memory technology? *)
  let trace = Option.get result.mem_trace in
  let powers =
    Nvsc_dramsim.Memory_system.compare_technologies
      ~techs:Nvsc_nvram.Technology.paper_set
      ~replay:(fun sink -> Nvsc_memtrace.Trace_log.replay_batch trace sink)
      ()
    |> Nvsc_dramsim.Memory_system.normalized_power
  in
  Format.printf "@.normalized average memory power:@.";
  List.iter
    (fun ((t : Nvsc_nvram.Technology.t), p) ->
      Format.printf "  %-8s %.3f@." t.name p)
    powers
