(* Hybrid-memory placement study.

   Profiles Nek5000, then compares two ways of exploiting a hybrid
   DRAM+STTRAM system (the paper's §II horizontal design):

   - a static, profile-driven placement decided once from the whole run;
   - the dynamic epoch-based policy in the style of Ramos et al. (the
     paper's reference [3]), migrating objects between memories as their
     per-iteration behaviour is observed.

   Run with: dune exec examples/placement_study.exe *)

module HM = Nvsc_placement.Hybrid_memory
module Item = Nvsc_placement.Item
module OM = Nvsc_core.Object_metrics

let item_of_metric (m : OM.t) =
  {
    Item.id = m.obj.Nvsc_memtrace.Mem_object.id;
    name = m.obj.Nvsc_memtrace.Mem_object.name;
    size_bytes = OM.size_bytes m;
    reads = m.reads;
    writes = m.writes;
    ref_share = m.ref_share;
  }

let () =
  let result =
    Nvsc_core.Scavenger.run
      Nvsc_core.Scavenger.Config.(
        default |> with_scale 0.5 |> with_iterations 8)
      (Option.get (Nvsc_apps.Apps.find "nek5000"))
  in
  let metrics = Nvsc_core.Scavenger.global_and_heap_metrics result in
  let items = List.map item_of_metric metrics in
  let tech = Nvsc_nvram.Technology.get Nvsc_nvram.Technology.STTRAM in
  let capacity = 2 * result.footprint_bytes in

  (* --- static placement ------------------------------------------------ *)
  let static =
    Nvsc_placement.Static_policy.plan
      ~hybrid:(HM.create ~dram_bytes:capacity ~nvram_bytes:capacity ~tech)
      items
  in
  Format.printf "static placement of %s:@." result.app_name;
  Format.printf "  objects in NVRAM: %d / %d@."
    (List.length (HM.items_in static HM.Nvram))
    (List.length items);
  Format.printf "  %a@.@." HM.pp_assessment (HM.assess static);

  (* --- dynamic placement ----------------------------------------------- *)
  (* start everything in NVRAM (maximum static-power saving) and let the
     policy pull hot writers back into DRAM epoch by epoch *)
  let hybrid = HM.create ~dram_bytes:capacity ~nvram_bytes:capacity ~tech in
  List.iter (fun item -> HM.place hybrid item HM.Nvram) items;
  let policy = Nvsc_placement.Dynamic_policy.create ~hybrid () in
  for iter = 1 to result.iterations do
    let epoch =
      List.map
        (fun (m : OM.t) ->
          {
            Nvsc_placement.Dynamic_policy.item = item_of_metric m;
            reads = m.per_iter_reads.(iter - 1);
            writes = m.per_iter_writes.(iter - 1);
          })
        metrics
    in
    Nvsc_placement.Dynamic_policy.observe_epoch policy epoch
  done;
  Format.printf "dynamic placement after %d epochs:@." result.iterations;
  Format.printf "  promotions (NVRAM->DRAM): %d, demotions: %d, migrated %a@."
    (Nvsc_placement.Dynamic_policy.promotions policy)
    (Nvsc_placement.Dynamic_policy.demotions policy)
    Nvsc_util.Units.pp_bytes
    (HM.migrated_bytes hybrid);
  Format.printf "  %a@." HM.pp_assessment (HM.assess hybrid)
