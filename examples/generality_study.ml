(* Do the paper's observations generalise beyond its four applications?

   The paper closes §I claiming its data-structure observations "apply
   broadly to many applications beyond our initial set".  This study runs
   the two beyond-the-paper workloads shipped with the library — a
   MiniFE-like sparse-CG finite-element proxy and a MiniMD-like molecular
   dynamics proxy — through the same pipeline and checks the claim:

   - MiniFE's CSR matrix is the "computing-dependent read-only data"
     scenario at a scale the paper never saw (over half the footprint);
   - MiniMD's neighbour list is the temporally NVRAM-friendly pattern of
     §VII-C (read-only between periodic rebuild bursts), which only a
     dynamic policy can exploit.

   Run with: dune exec examples/generality_study.exe *)

module OM = Nvsc_core.Object_metrics
module Mem_object = Nvsc_memtrace.Mem_object

let () =
  List.iter
    (fun name ->
      let app = Option.get (Nvsc_apps.Apps.find name) in
      let r =
        Nvsc_core.Scavenger.run
          Nvsc_core.Scavenger.Config.(
            default |> with_scale 0.5 |> with_iterations 8)
          app
      in
      Format.printf "== %s ==@." r.app_name;
      Nvsc_core.Stack_analysis.pp_summary_table Format.std_formatter
        [ Nvsc_core.Stack_analysis.summarize r ];
      let rep = Nvsc_core.Object_analysis.analyze r in
      Format.printf
        "read-only: %s of footprint; NVRAM-suitable (cat. 2): %s@."
        (Nvsc_util.Table.cell_pct rep.Nvsc_core.Object_analysis.read_only_fraction)
        (Nvsc_util.Table.cell_pct
           rep.Nvsc_core.Object_analysis.nvram_friendly_fraction);
      (* the placement consequence *)
      let p =
        Nvsc_core.Extensions.placement_summary ~scale:0.5 ~iterations:8 app
      in
      Nvsc_core.Extensions.pp_placement Format.std_formatter p;
      Format.printf "@.")
    [ "minife"; "minimd" ];

  (* MiniMD's neighbour list, iteration by iteration: the §VII-C pattern *)
  let r =
    Nvsc_core.Scavenger.run
      Nvsc_core.Scavenger.Config.(
        default |> with_scale 0.5 |> with_iterations 8)
      (Option.get (Nvsc_apps.Apps.find "minimd"))
  in
  let nl =
    List.find
      (fun (m : OM.t) -> m.obj.Mem_object.name = "neighbor_list")
      r.metrics
  in
  Format.printf "minimd neighbor_list per-iteration read/write ratio:@.";
  for iter = 1 to r.iterations do
    let ratio = OM.per_iter_ratio nl ~iter in
    Format.printf "  iter %d: %s@." iter
      (if ratio = infinity then "read-only"
       else Printf.sprintf "%.2f (rebuild burst)" ratio)
  done
