(* Differential tests pinning the optimized cachesim kernels to the
   straightforward reference implementations in test/oracle/.  The
   optimizations (mask/shift indexing, encoded-int effects, fused
   find-or-victim scan, resident-line memos, the hierarchy's repeated-line
   fast path) must be observationally invisible: identical statistics,
   identical evictions and identical sink output on identical streams,
   across geometries including direct-mapped, non-power-of-two set counts
   (built by direct record construction — [Cache_params.make] rejects
   them) and line-straddling accesses. *)

module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink
module Cache_params = Nvsc_cachesim.Cache_params
module Cache = Nvsc_cachesim.Cache
module Hierarchy = Nvsc_cachesim.Hierarchy
module OC = Nvsc_oracle.Oracle_cache
module OH = Nvsc_oracle.Oracle_hierarchy

(* --- geometries ------------------------------------------------------- *)

let tiny_l1 =
  Cache_params.make ~name:"tiny-l1" ~size_bytes:(16 * 64 * 2) ~associativity:2
    ~write_miss:Cache_params.No_write_allocate ()

let tiny_l2 =
  Cache_params.make ~name:"tiny-l2" ~size_bytes:(64 * 64 * 4) ~associativity:4
    ~write_miss:Cache_params.Write_allocate ()

let direct_mapped_l1 =
  Cache_params.make ~name:"dm-l1" ~size_bytes:(32 * 64) ~associativity:1
    ~write_miss:Cache_params.Write_allocate ()

let direct_mapped_l2 =
  Cache_params.make ~name:"dm-l2" ~size_bytes:(128 * 64) ~associativity:1
    ~write_miss:Cache_params.Write_allocate ()

(* Non-power-of-two set counts: 3 and 6 sets.  Built directly because
   [Cache_params.make] rejects them; [Cache] must fall back to its guarded
   div/mod indexing path. *)
let odd_l1 =
  {
    Cache_params.name = "np2-l1";
    size_bytes = 3 * 64 * 2;
    associativity = 2;
    line_bytes = 64;
    write_miss = Cache_params.No_write_allocate;
  }

let odd_l2 =
  {
    Cache_params.name = "np2-l2";
    size_bytes = 6 * 64 * 4;
    associativity = 4;
    line_bytes = 64;
    write_miss = Cache_params.Write_allocate;
  }

let geometries =
  [
    ("paper", Cache_params.paper_l1d, Cache_params.paper_l2);
    ("tiny", tiny_l1, tiny_l2);
    ("direct-mapped", direct_mapped_l1, direct_mapped_l2);
    ("non-pow2-sets", odd_l1, odd_l2);
  ]

(* --- harness ---------------------------------------------------------- *)

let collecting_sink () =
  let acc = ref [] in
  let sink =
    Sink.create ~capacity:13 (fun b ~first ~n ->
        for i = first to first + n - 1 do
          acc :=
            (Sink.Batch.addr b i, Sink.Batch.size b i, Sink.Batch.is_write b i)
            :: !acc
        done)
  in
  (sink, acc)

let cache_stats_equal (c : Cache.t) (o : OC.t) =
  Cache.read_hits c = OC.read_hits o
  && Cache.read_misses c = OC.read_misses o
  && Cache.write_hits c = OC.write_hits o
  && Cache.write_misses c = OC.write_misses o
  && Cache.evictions c = OC.evictions o
  && Cache.dirty_evictions c = OC.dirty_evictions o
  && Cache.resident_lines c = OC.resident_lines o

(* Run one stream through both hierarchies (interleaved, so any divergence
   is caught at the first differing reference) and compare everything
   observable: per-level stats, traffic counters and the exact memory
   trace each pushed into its sink. *)
let check_stream ~l1d ~l2 stream =
  let sink_h, out_h = collecting_sink () in
  let sink_o, out_o = collecting_sink () in
  let h = Hierarchy.create ~l1d ~l2 ~sink:sink_h () in
  let o = OH.create ~l1d ~l2 ~sink:sink_o () in
  List.iter
    (fun (addr, size, op) ->
      Hierarchy.access_raw h ~addr ~size ~op;
      OH.access_raw o ~addr ~size ~op)
    stream;
  Hierarchy.drain h;
  OH.drain o;
  Hierarchy.accesses h = OH.accesses o
  && Hierarchy.memory_reads h = OH.memory_reads o
  && Hierarchy.memory_writes h = OH.memory_writes o
  && cache_stats_equal (Hierarchy.l1d h) (OH.l1d o)
  && cache_stats_equal (Hierarchy.l2 h) (OH.l2 o)
  && !out_h = !out_o

(* --- property: random streams, all geometries ------------------------- *)

let gen_ref =
  QCheck.Gen.(
    let* addr = int_range 0 ((1 lsl 20) - 1) in
    (* sizes up to 3 lines: plenty of straddling accesses *)
    let* size = oneofl [ 1; 2; 4; 8; 16; 64; 100; 192 ] in
    let* w = bool in
    return (addr, size, if w then Access.Write else Access.Read))

let arbitrary_stream =
  QCheck.make QCheck.Gen.(list_size (int_range 200 600) gen_ref)

let hierarchy_differential_tests =
  List.map
    (fun (name, l1d, l2) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "hierarchy matches oracle (%s)" name)
        ~count:30 arbitrary_stream
        (fun stream -> check_stream ~l1d ~l2 stream))
    geometries

(* Boundary-hugging addresses: every access starts within a word of a line
   edge, so the straddling split path is exercised constantly. *)
let straddle_stream =
  QCheck.Gen.(
    let* n = int_range 300 800 in
    list_size (return n)
      (let* line = int_range 0 4095 in
       let* off = int_range 56 63 in
       let* size = int_range 2 140 in
       let* w = bool in
       return ((line * 64) + off, size, if w then Access.Write else Access.Read)))

let straddle_differential =
  QCheck.Test.make ~name:"hierarchy matches oracle (line-straddling)"
    ~count:30
    (QCheck.make straddle_stream)
    (fun stream -> check_stream ~l1d:tiny_l1 ~l2:tiny_l2 stream)

(* --- property: single cache level, per-access effect equality ---------- *)

let effect_equal line (e : Cache.Effect.t) (r : OC.effect_) =
  Cache.Effect.hit e = r.OC.hit
  && Cache.Effect.fills e = (r.OC.fill = Some line)
  && Cache.Effect.forwards_write e = (r.OC.forward_write = Some line)
  && (match r.OC.writeback with
     | Some l ->
       Cache.Effect.has_writeback e && Cache.Effect.writeback_line e = l
     | None -> not (Cache.Effect.has_writeback e))

let cache_params_pool =
  [ Cache_params.paper_l1d; Cache_params.paper_l2; tiny_l1; tiny_l2;
    direct_mapped_l1; odd_l1; odd_l2 ]

let cache_differential =
  QCheck.Test.make ~name:"cache effects match oracle per access" ~count:60
    QCheck.(
      make
        Gen.(
          let* p = oneofl cache_params_pool in
          let* ops =
            list_size (int_range 200 500)
              (pair (int_range 0 1023) bool)
          in
          return (p, ops)))
    (fun (p, ops) ->
      let c = Cache.create p and o = OC.create p in
      List.for_all
        (fun (line, is_write) ->
          let e, r =
            if is_write then (Cache.write c ~line, OC.write o ~line)
            else (Cache.read c ~line, OC.read o ~line)
          in
          effect_equal line e r
          && Cache.probe c ~line = OC.probe o ~line
          && Cache.is_dirty c ~line = OC.is_dirty o ~line)
        ops
      && cache_stats_equal c o)

(* --- deterministic long streams: >=10k refs per geometry --------------- *)

(* A fixed LCG keeps the big runs reproducible and independent of qcheck's
   shrinking; 20_000 references per geometry, batch-consumed through
   [Hierarchy.consume] so the unchecked batch branch is the one under
   test. *)
let lcg_stream n =
  let state = ref 0x5DEECE66D in
  let next () =
    state := ((!state * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    !state lsr 16
  in
  List.init n (fun _ ->
      let addr = next () land ((1 lsl 22) - 1) in
      let size = 1 + (next () mod 160) in
      let op = if next () land 1 = 0 then Access.Write else Access.Read in
      (addr, size, op))

let test_long_streams () =
  let stream = lcg_stream 20_000 in
  List.iter
    (fun (name, l1d, l2) ->
      let sink_h, out_h = collecting_sink () in
      let sink_o, out_o = collecting_sink () in
      let h = Hierarchy.create ~l1d ~l2 ~sink:sink_h () in
      let o = OH.create ~l1d ~l2 ~sink:sink_o () in
      (* feed the optimized side through its batch consumer *)
      let feed =
        Sink.create ~capacity:4096 (fun b ~first ~n ->
            Hierarchy.consume h b ~first ~n)
      in
      List.iter
        (fun (addr, size, op) ->
          Sink.push feed ~addr ~size ~op;
          OH.access_raw o ~addr ~size ~op)
        stream;
      Sink.flush feed;
      Hierarchy.drain h;
      OH.drain o;
      Alcotest.(check int)
        (name ^ ": accesses") (OH.accesses o) (Hierarchy.accesses h);
      Alcotest.(check int)
        (name ^ ": memory reads") (OH.memory_reads o)
        (Hierarchy.memory_reads h);
      Alcotest.(check int)
        (name ^ ": memory writes") (OH.memory_writes o)
        (Hierarchy.memory_writes h);
      Alcotest.(check bool)
        (name ^ ": L1 stats") true
        (cache_stats_equal (Hierarchy.l1d h) (OH.l1d o));
      Alcotest.(check bool)
        (name ^ ": L2 stats") true
        (cache_stats_equal (Hierarchy.l2 h) (OH.l2 o));
      Alcotest.(check bool) (name ^ ": memory trace") true (!out_h = !out_o))
    geometries

(* --- zero-allocation hit paths ----------------------------------------- *)

(* 10_000 alternating read/write hits on a resident line: any per-access
   heap allocation would show up as >=20_000 minor words.  The small slack
   absorbs the boxed floats [Gc.minor_words] itself returns. *)
let test_hit_path_allocation_free () =
  let c = Cache.create Cache_params.paper_l1d in
  ignore (Cache.write c ~line:7);
  ignore (Cache.read c ~line:7);
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Cache.read c ~line:7);
    ignore (Cache.write c ~line:7)
  done;
  let dw = Gc.minor_words () -. w0 in
  if dw > 16. then
    Alcotest.failf "cache hit path allocated: %.0f minor words / 20k accesses"
      dw

let test_miss_path_allocation_free () =
  let c = Cache.create tiny_l1 in
  ignore (Cache.read c ~line:0);
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    (* distinct lines: every access misses, evicts and (on writes) walks
       the write-back path *)
    ignore (Cache.write c ~line:(i * 17));
    ignore (Cache.read c ~line:(i * 31))
  done;
  let dw = Gc.minor_words () -. w0 in
  if dw > 16. then
    Alcotest.failf "cache miss path allocated: %.0f minor words / 20k accesses"
      dw

let suite =
  [
    Alcotest.test_case "long LCG streams, all geometries (4x20k refs)" `Quick
      test_long_streams;
    Alcotest.test_case "cache hit path is allocation-free" `Quick
      test_hit_path_allocation_free;
    Alcotest.test_case "cache miss path is allocation-free" `Quick
      test_miss_path_allocation_free;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      (hierarchy_differential_tests
      @ [ straddle_differential; cache_differential ])
