(* NVSC-Persist: adversarial crash-consistency defects + checker assertions.

   The defect app seeds one instance of every injectable defect class per
   main iteration — (1) store + commit without flush, (2) store again
   while a write-back is still unfenced, (3) flush + commit without fence
   — plus the epoch-shape and warning classes as one-shots, and the tests
   assert the checker reports exactly those classes with exactly those
   counts, at batch capacities 1, 7 and 65536, live and over a recorded
   trace, while the six shipped mini-apps (all epoch-annotated) report
   nothing at all. *)

module Ctx = Nvsc_appkit.Ctx
module Mem_object = Nvsc_memtrace.Mem_object
module Trace_run = Nvsc_core.Trace_run
module Scavenger = Nvsc_core.Scavenger
module P = Nvsc_sanitizer.Persist_check
module Lint = Nvsc_sanitizer.Config_lint
module D = Nvsc_sanitizer.Diagnostic

let with_tmp f =
  let path = Filename.temp_file "nvsc-persist" ".nvt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- the adversarial app ------------------------------------------------- *)

let words = 16 (* 128 bytes: two cache lines per object *)

let defect_app : (module Nvsc_apps.Workload.APP) =
  (module struct
    let name = "persist-defect"
    let description = "seeded crash-consistency defects"
    let input_description = "adversarial"
    let paper_footprint_mb = 0.

    let run ?scale ctx ~iterations =
      ignore scale;
      Ctx.set_phase ctx Mem_object.Pre;
      let g name = Ctx.alloc_global ctx ~name ~words in
      let p_commit = g "p_commit" in
      let p_race = g "p_race" in
      let p_torn = g "p_torn" in
      let p_clean = g "p_clean" in
      let g_plain = g "g_plain" in
      List.iter (Ctx.persist ctx) [ p_commit; p_race; p_torn; p_clean ];
      for iter = 1 to iterations do
        Ctx.set_phase ctx (Mem_object.Main iter);
        (* (1) dirty lines at commit: store, never flush *)
        Ctx.epoch_begin ctx ~label:"unflushed";
        Ctx.write_addr ctx ~addr:p_commit.Mem_object.base;
        Ctx.epoch_commit ctx ~label:"unflushed";
        (* make p_commit durable outside the epoch so later commits are
           judged on their own defects only *)
        Ctx.flush_all ctx p_commit;
        Ctx.fence ctx;
        (* (2) store overtakes an unfenced write-back *)
        Ctx.epoch_begin ctx ~label:"race";
        Ctx.write_addr ctx ~addr:p_race.Mem_object.base;
        Ctx.flush_all ctx p_race;
        Ctx.write_addr ctx ~addr:p_race.Mem_object.base;
        Ctx.flush_all ctx p_race;
        Ctx.fence ctx;
        Ctx.epoch_commit ctx ~label:"race";
        (* (3) flushed but unfenced at commit *)
        Ctx.epoch_begin ctx ~label:"torn";
        Ctx.write_addr ctx ~addr:p_torn.Mem_object.base;
        Ctx.flush_all ctx p_torn;
        Ctx.epoch_commit ctx ~label:"torn";
        Ctx.fence ctx;
        (* warnings: a flush covering no dirty line, a fence with nothing
           in flight *)
        Ctx.flush_all ctx p_clean;
        Ctx.fence ctx;
        if iter = iterations then begin
          (* flush of an object never declared persistent *)
          Ctx.flush_all ctx g_plain;
          (* the epoch-shape defects, one of each *)
          Ctx.epoch_commit ctx ~label:"orphan";
          Ctx.epoch_begin ctx ~label:"a";
          Ctx.epoch_commit ctx ~label:"b";
          Ctx.epoch_begin ctx ~label:"outer";
          Ctx.epoch_begin ctx ~label:"inner";
          Ctx.epoch_commit ctx ~label:"inner";
          Ctx.epoch_commit ctx ~label:"outer";
          Ctx.epoch_begin ctx ~label:"dangling"
        end
      done;
      Ctx.set_phase ctx Mem_object.Post
  end)

let iterations = 3

let run_defect ~capacity =
  let module A = (val defect_app : Nvsc_apps.Workload.APP) in
  let ctx = Ctx.create ~batch_capacity:capacity () in
  let chk = P.attach ctx in
  A.run ctx ~iterations;
  Ctx.flush_refs ctx;
  P.finish chk

let shape report =
  List.map
    (fun (f : D.finding) -> (D.klass_to_string f.klass, f.owner, f.count))
    report

let shape_t = Alcotest.(triple string string int)

let expected_defects =
  (* in report order: severity, then class rank, then owner *)
  [
    ("unflushed-at-commit", "p_commit", iterations);
    ("store-during-flush", "p_race", iterations);
    ("torn-checkpoint", "p_torn", iterations);
    ("epoch-unbalanced", "b", 1);
    ("epoch-unbalanced", "dangling", 1);
    ("epoch-unbalanced", "inner", 1);
    ("epoch-unbalanced", "orphan", 1);
    ("redundant-flush", "g_plain", 1);
    ("redundant-flush", "p_clean", iterations);
    ("useless-fence", "<fence>", iterations);
  ]

let test_defect_classes () =
  let report = run_defect ~capacity:65536 in
  Alcotest.(check (list shape_t))
    "every seeded class, nothing else" expected_defects (shape report)

let test_first_occurrence () =
  let report = run_defect ~capacity:7 in
  List.iter
    (fun (f : D.finding) ->
      match f.klass with
      | D.Unflushed_commit | D.Flush_race | D.Torn_checkpoint ->
        (match f.first with
        | Some { phase = Mem_object.Main 1; index } ->
          Alcotest.(check bool)
            ("positive index: " ^ f.owner)
            true (index > 0)
        | _ ->
          Alcotest.failf "%s: first occurrence should be in main[1]" f.owner)
      | D.Epoch_unbalanced when f.owner = "dangling" ->
        (* reported at finish, under the phase the run ended in *)
        (match f.first with
        | Some { phase = Mem_object.Post; _ } -> ()
        | _ -> Alcotest.failf "dangling epoch should surface in post")
      | _ ->
        Alcotest.(check bool)
          ("live finding has no trace position: " ^ f.owner)
          true (f.source = None))
    report

let render = Format.asprintf "%a" D.pp_report

let test_capacity_determinism () =
  let r1 = run_defect ~capacity:1 in
  let r7 = run_defect ~capacity:7 in
  let r64k = run_defect ~capacity:65536 in
  Alcotest.(check string) "capacity 1 = capacity 65536" (render r64k)
    (render r1);
  Alcotest.(check string) "capacity 7 = capacity 65536" (render r64k)
    (render r7)

let capacity_property =
  QCheck.Test.make
    ~name:"persist verdict invariant under any batch capacity" ~count:16
    QCheck.(make ~print:string_of_int Gen.(int_range 1 512))
    (let baseline = lazy (render (run_defect ~capacity:65536)) in
     fun capacity -> render (run_defect ~capacity) = Lazy.force baseline)

(* --- live vs replay ------------------------------------------------------ *)

let record_defect path =
  ignore (Trace_run.record ~scale:1.0 ~iterations ~path defect_app)

let test_live_vs_replay () =
  with_tmp @@ fun path ->
  record_defect path;
  let live = run_defect ~capacity:65536 in
  let replayed, chk = P.replay path in
  Alcotest.(check (list shape_t))
    "same verdict from the trace" (shape live) (shape replayed);
  Alcotest.(check bool)
    "same first occurrences" true
    (List.map (fun (f : D.finding) -> f.first) live
    = List.map (fun (f : D.finding) -> f.first) replayed);
  Alcotest.(check bool)
    "replayed findings carry a trace position" true
    (List.for_all
       (fun (f : D.finding) ->
         match f.source with
         | Some { D.file; chunk; record } ->
           file = path && chunk >= 0 && record >= 0
         | None -> false)
       replayed);
  Alcotest.(check int)
    "all epoch boundaries seen"
    ((6 * iterations) + 8)
    (P.epoch_boundaries chk);
  Alcotest.(check int)
    "count_boundaries agrees"
    ((6 * iterations) + 8)
    (P.count_boundaries path)

let errors_only report =
  List.filter (fun (f : D.finding) -> f.severity = D.Error) report

let test_crash_injection () =
  with_tmp @@ fun path ->
  record_defect path;
  (* boundary 0 is the first epoch_begin: crashing right after it leaves
     the epoch open, which is the crash, not a defect *)
  let r0, _ = P.replay ~crash_at:0 path in
  Alcotest.(check (list shape_t)) "crash inside first epoch is clean" []
    (shape r0);
  (* boundary 1 is the first "unflushed" commit: the surviving prefix
     holds exactly that one defect *)
  let r1, _ = P.replay ~crash_at:1 path in
  Alcotest.(check (list shape_t))
    "crash after first commit keeps its verdict"
    [ ("unflushed-at-commit", "p_commit", 1) ]
    (shape r1);
  (* boundary 5 is the first "torn" commit: all three error classes of
     iteration 1 are visible, and none of the warnings that follow *)
  let r5, _ = P.replay ~crash_at:5 path in
  Alcotest.(check (list shape_t))
    "prefix up to the torn commit"
    [
      ("unflushed-at-commit", "p_commit", 1);
      ("store-during-flush", "p_race", 1);
      ("torn-checkpoint", "p_torn", 1);
    ]
    (shape r5)

let test_crashsim_clean_app () =
  with_tmp @@ fun path ->
  ignore
    (Trace_run.record ~scale:0.1 ~iterations:2 ~path
       (Option.get (Nvsc_apps.Apps.find "minimd")));
  let boundaries = P.count_boundaries path in
  Alcotest.(check int) "one epoch per iteration" 4 boundaries;
  let whole, _ = P.replay path in
  Alcotest.(check (list shape_t)) "whole trace is clean" [] (shape whole);
  for k = 0 to boundaries - 1 do
    let report, _ = P.replay ~crash_at:k path in
    Alcotest.(check (list shape_t))
      (Printf.sprintf "crash point %d is consistent" k)
      [] (shape report)
  done

(* --- shipped apps are crash-consistent ----------------------------------- *)

let test_shipped_apps_persist_clean () =
  List.iter
    (fun (module A : Nvsc_apps.Workload.APP) ->
      let r =
        Scavenger.run
          Scavenger.Config.(
            default |> with_scale 0.25 |> with_iterations 2
            |> with_persist true)
          (module A)
      in
      let report = Option.get r.Scavenger.persist_report in
      Alcotest.(check (list shape_t)) (A.name ^ " is clean") [] (shape report);
      let stats = Option.get r.Scavenger.persist_stats in
      Alcotest.(check int) (A.name ^ ": one epoch per iteration") 2
        stats.P.epochs;
      Alcotest.(check int) (A.name ^ ": one fence per epoch") 2 stats.P.fences;
      Alcotest.(check bool)
        (A.name ^ ": persist-set stores were checked")
        true
        (stats.P.stores_checked > 0 && stats.P.flushed_lines > 0))
    Nvsc_apps.Apps.extended

(* --- the static half: lint --persist -------------------------------------- *)

let test_lint_persist_clean () =
  List.iter
    (fun (module A : Nvsc_apps.Workload.APP) ->
      Alcotest.(check (list shape_t))
        (A.name ^ " lints clean")
        []
        (shape (Lint.persist ~scale:0.1 ~iterations:2 (module A))))
    Nvsc_apps.Apps.extended

let test_lint_epoch_shape () =
  (* the lint sees the same epoch-shape defects without running the
     per-line state machine *)
  Alcotest.(check (list shape_t))
    "static epoch balance"
    [
      ("epoch-unbalanced", "b", 1);
      ("epoch-unbalanced", "dangling", 1);
      ("epoch-unbalanced", "inner", 1);
      ("epoch-unbalanced", "orphan", 1);
    ]
    (shape (Lint.persist ~scale:1.0 ~iterations defect_app))

let hot_app : (module Nvsc_apps.Workload.APP) =
  (module struct
    let name = "hot-persist"
    let description = "rewrites its persist set every pass"
    let input_description = "adversarial"
    let paper_footprint_mb = 0.

    let run ?scale ctx ~iterations =
      ignore scale;
      Ctx.set_phase ctx Mem_object.Pre;
      let hot = Ctx.alloc_global ctx ~name:"hot" ~words:64 in
      Ctx.persist ctx hot;
      for iter = 1 to iterations do
        Ctx.set_phase ctx (Mem_object.Main iter);
        for _pass = 1 to 8 do
          for k = 0 to 63 do
            Ctx.write_addr ctx ~addr:(hot.Mem_object.base + (8 * k))
          done
        done;
        Ctx.epoch_begin ctx ~label:"ckpt";
        Ctx.flush_all ctx hot;
        Ctx.fence ctx;
        Ctx.epoch_commit ctx ~label:"ckpt"
      done;
      Ctx.set_phase ctx Mem_object.Post
  end)

let test_lint_write_heavy () =
  (* 8 writes/word/iteration is over the wear threshold (4): the data is
     checkpoint-shaped but too hot to pin in NVRAM wholesale *)
  Alcotest.(check (list shape_t))
    "write-heavy persist set flagged"
    [ ("persist-write-heavy", "hot", 1) ]
    (shape (Lint.persist ~scale:1.0 ~iterations:2 hot_app));
  (* but the same app honours the durability contract dynamically *)
  let module A = (val hot_app : Nvsc_apps.Workload.APP) in
  let ctx = Ctx.create () in
  let chk = P.attach ctx in
  A.run ctx ~iterations:2;
  Ctx.flush_refs ctx;
  Alcotest.(check (list shape_t))
    "dynamically clean" [] (shape (P.finish chk))

let suite =
  [
    Alcotest.test_case "defect app: all classes detected" `Quick
      test_defect_classes;
    Alcotest.test_case "first occurrences" `Quick test_first_occurrence;
    Alcotest.test_case "verdict invariant under batch capacity" `Quick
      test_capacity_determinism;
    Alcotest.test_case "live and replay verdicts identical" `Quick
      test_live_vs_replay;
    Alcotest.test_case "crash injection truncates the verdict" `Quick
      test_crash_injection;
    Alcotest.test_case "crashsim: clean app consistent at every point" `Quick
      test_crashsim_clean_app;
    Alcotest.test_case "shipped apps are crash-consistent" `Slow
      test_shipped_apps_persist_clean;
    Alcotest.test_case "shipped apps lint --persist clean" `Slow
      test_lint_persist_clean;
    Alcotest.test_case "lint: static epoch balance" `Quick
      test_lint_epoch_shape;
    Alcotest.test_case "lint: write-heavy persist set" `Quick
      test_lint_write_heavy;
    QCheck_alcotest.to_alcotest capacity_property;
  ]
