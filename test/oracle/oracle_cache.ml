(* Reference implementation: the straightforward set-associative cache the
   optimized [Nvsc_cachesim.Cache] replaced (div/mod set indexing, an
   allocated effect record, two-scan victim selection).  Kept verbatim as
   the oracle for the differential qcheck properties — do not optimize. *)

type effect_ = {
  hit : bool;
  fill : int option;
  writeback : int option;
  forward_write : int option;
}

module Cache_params = Nvsc_cachesim.Cache_params

type t = {
  p : Cache_params.t;
  nsets : int;
  tags : int array; (* -1 = invalid; indexed set*assoc + way *)
  dirty : bool array;
  age : int array; (* LRU timestamps *)
  mutable clock : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
  mutable evictions : int;
  mutable dirty_evictions : int;
}

let create p =
  let nsets = Cache_params.sets p in
  let n = nsets * p.Cache_params.associativity in
  {
    p;
    nsets;
    tags = Array.make n (-1);
    dirty = Array.make n false;
    age = Array.make n 0;
    clock = 0;
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0;
    evictions = 0;
    dirty_evictions = 0;
  }

let params t = t.p

let set_of t line = line mod t.nsets
let tag_of t line = line / t.nsets
let line_of t set tag = (tag * t.nsets) + set

let find_way t set tag =
  let base = set * t.p.Cache_params.associativity in
  let rec go w =
    if w >= t.p.Cache_params.associativity then None
    else if t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

(* Victim selection: first invalid way, otherwise least-recently-used. *)
let victim_way t set =
  let base = set * t.p.Cache_params.associativity in
  let rec find_invalid w =
    if w >= t.p.Cache_params.associativity then None
    else if t.tags.(base + w) = -1 then Some (base + w)
    else find_invalid (w + 1)
  in
  match find_invalid 0 with
  | Some idx -> idx
  | None ->
    let best = ref base in
    for w = 1 to t.p.Cache_params.associativity - 1 do
      if t.age.(base + w) < t.age.(!best) then best := base + w
    done;
    !best

let touch t idx =
  t.clock <- t.clock + 1;
  t.age.(idx) <- t.clock

let no_effect = { hit = true; fill = None; writeback = None; forward_write = None }

let allocate t set tag ~make_dirty =
  let idx = victim_way t set in
  let writeback =
    if t.tags.(idx) <> -1 then begin
      t.evictions <- t.evictions + 1;
      if t.dirty.(idx) then begin
        t.dirty_evictions <- t.dirty_evictions + 1;
        Some (line_of t set t.tags.(idx))
      end
      else None
    end
    else None
  in
  t.tags.(idx) <- tag;
  t.dirty.(idx) <- make_dirty;
  touch t idx;
  writeback

let read t ~line =
  let set = set_of t line and tag = tag_of t line in
  match find_way t set tag with
  | Some idx ->
    t.read_hits <- t.read_hits + 1;
    touch t idx;
    no_effect
  | None ->
    t.read_misses <- t.read_misses + 1;
    let writeback = allocate t set tag ~make_dirty:false in
    { hit = false; fill = Some line; writeback; forward_write = None }

let write t ~line =
  let set = set_of t line and tag = tag_of t line in
  match find_way t set tag with
  | Some idx ->
    t.write_hits <- t.write_hits + 1;
    t.dirty.(idx) <- true;
    touch t idx;
    no_effect
  | None ->
    t.write_misses <- t.write_misses + 1;
    (match t.p.Cache_params.write_miss with
    | Cache_params.Write_allocate ->
      let writeback = allocate t set tag ~make_dirty:true in
      { hit = false; fill = Some line; writeback; forward_write = None }
    | Cache_params.No_write_allocate ->
      { hit = false; fill = None; writeback = None; forward_write = Some line })

let probe t ~line = find_way t (set_of t line) (tag_of t line) <> None

let is_dirty t ~line =
  match find_way t (set_of t line) (tag_of t line) with
  | Some idx -> t.dirty.(idx)
  | None -> false

let flush_dirty t f =
  for set = 0 to t.nsets - 1 do
    let base = set * t.p.Cache_params.associativity in
    for w = 0 to t.p.Cache_params.associativity - 1 do
      let idx = base + w in
      if t.tags.(idx) <> -1 && t.dirty.(idx) then begin
        f (line_of t set t.tags.(idx));
        t.dirty.(idx) <- false
      end
    done
  done

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.age 0 (Array.length t.age) 0

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag <> -1 then acc + 1 else acc) 0 t.tags

let hits t = t.read_hits + t.write_hits
let misses t = t.read_misses + t.write_misses
let read_hits t = t.read_hits
let read_misses t = t.read_misses
let write_hits t = t.write_hits
let write_misses t = t.write_misses
let evictions t = t.evictions
let dirty_evictions t = t.dirty_evictions

let miss_rate t =
  let total = hits t + misses t in
  if total = 0 then 0. else float_of_int (misses t) /. float_of_int total

let reset_stats t =
  t.read_hits <- 0;
  t.read_misses <- 0;
  t.write_hits <- 0;
  t.write_misses <- 0;
  t.evictions <- 0;
  t.dirty_evictions <- 0
