(* Reference implementation: the per-line dispatch hierarchy the optimized
   [Nvsc_cachesim.Hierarchy] replaced (div-based line splitting, no
   single-line fast path, effect records at every level).  Oracle for the
   differential qcheck properties — do not optimize. *)

module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink
module Cache_params = Nvsc_cachesim.Cache_params
module Cache = Oracle_cache

type t = {
  l1d : Cache.t;
  l2 : Cache.t;
  line_bytes : int;
  sink : Sink.t;
  mutable accesses : int;
  mutable memory_reads : int;
  mutable memory_writes : int;
}

let create ?(l1d = Cache_params.paper_l1d) ?(l2 = Cache_params.paper_l2) ~sink
    () =
  if l1d.Cache_params.line_bytes <> l2.Cache_params.line_bytes then
    invalid_arg "Oracle_hierarchy.create: levels must share a line size";
  {
    l1d = Cache.create l1d;
    l2 = Cache.create l2;
    line_bytes = l1d.Cache_params.line_bytes;
    sink;
    accesses = 0;
    memory_reads = 0;
    memory_writes = 0;
  }

let mem_read t line =
  t.memory_reads <- t.memory_reads + 1;
  Sink.push t.sink ~addr:(line * t.line_bytes) ~size:t.line_bytes
    ~op:Access.Read

let mem_write t line =
  t.memory_writes <- t.memory_writes + 1;
  Sink.push t.sink ~addr:(line * t.line_bytes) ~size:t.line_bytes
    ~op:Access.Write

let l2_read t line =
  let e = Cache.read t.l2 ~line in
  (match e.Cache.fill with Some l -> mem_read t l | None -> ());
  match e.Cache.writeback with Some l -> mem_write t l | None -> ()

let l2_write t line =
  let e = Cache.write t.l2 ~line in
  (match e.Cache.fill with Some l -> mem_read t l | None -> ());
  (match e.Cache.writeback with Some l -> mem_write t l | None -> ());
  match e.Cache.forward_write with Some l -> mem_write t l | None -> ()

let access_line t line op =
  t.accesses <- t.accesses + 1;
  match op with
  | Access.Read ->
    let e = Cache.read t.l1d ~line in
    (match e.Cache.fill with Some l -> l2_read t l | None -> ());
    (match e.Cache.writeback with Some l -> l2_write t l | None -> ())
  | Access.Write ->
    let e = Cache.write t.l1d ~line in
    (match e.Cache.fill with Some l -> l2_read t l | None -> ());
    (match e.Cache.writeback with Some l -> l2_write t l | None -> ());
    (match e.Cache.forward_write with Some l -> l2_write t l | None -> ())

let access_raw t ~addr ~size ~op =
  let first = addr / t.line_bytes in
  let last = (addr + size - 1) / t.line_bytes in
  for line = first to last do
    access_line t line op
  done

let access t (a : Access.t) = access_raw t ~addr:a.addr ~size:a.size ~op:a.op

(* The pre-optimization batch consumer, verbatim (minus the tracing span):
   per-element checked accessors, no hoisting.  Kept so the kernel bench
   can price the old filter stage on identical streams. *)
let consume t batch ~first ~n =
  for i = first to first + n - 1 do
    access_raw t ~addr:(Sink.Batch.addr batch i) ~size:(Sink.Batch.size batch i)
      ~op:(Sink.Batch.op batch i)
  done

let drain t =
  Cache.flush_dirty t.l1d (fun line -> l2_write t line);
  Cache.flush_dirty t.l2 (fun line -> mem_write t line);
  Sink.flush t.sink

let reset t =
  Cache.invalidate_all t.l1d;
  Cache.invalidate_all t.l2;
  Cache.reset_stats t.l1d;
  Cache.reset_stats t.l2;
  t.accesses <- 0;
  t.memory_reads <- 0;
  t.memory_writes <- 0

let l1d t = t.l1d
let l2 t = t.l2
let accesses t = t.accesses
let memory_reads t = t.memory_reads
let memory_writes t = t.memory_writes
