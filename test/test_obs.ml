(* Nvsc_obs: spans, metrics registry, exporters, and the redesigned
   Scavenger.Config API that carries the observability handle. *)

module Obs = Nvsc_obs
module Span = Nvsc_obs.Span
module Metrics = Nvsc_obs.Metrics
module Json = Nvsc_util.Json

(* The recorder is global; every test starts from a clean, disarmed
   state and leaves it that way. *)
let recording f =
  Obs.reset ();
  Span.enable ();
  Fun.protect ~finally:Span.disable f

(* --- spans --------------------------------------------------------------- *)

let test_span_nesting () =
  recording @@ fun () ->
  Span.with_ "outer" (fun () ->
      Span.with_ "child1" (fun () -> ignore (Sys.opaque_identity 1));
      Span.with_ ~arg:"x" "child2" (fun () -> ignore (Sys.opaque_identity 2)));
  let events = Span.events () in
  Alcotest.(check (list string))
    "close order: children before parent"
    [ "child1"; "child2"; "outer" ]
    (List.map (fun (e : Span.event) -> e.name) events);
  List.iter
    (fun (e : Span.event) ->
      Alcotest.(check int) (e.name ^ " depth")
        (if e.name = "outer" then 0 else 1)
        e.depth;
      Alcotest.(check bool) (e.name ^ " dur >= self") true
        (e.dur_ns >= e.self_ns && e.self_ns >= 0))
    events;
  let dur name =
    (List.find (fun (e : Span.event) -> e.name = name) events).Span.dur_ns
  in
  let outer = List.find (fun (e : Span.event) -> e.name = "outer") events in
  Alcotest.(check int) "self = dur - children"
    (outer.dur_ns - dur "child1" - dur "child2")
    outer.self_ns;
  Alcotest.(check (option string)) "arg recorded" (Some "x")
    (List.find (fun (e : Span.event) -> e.name = "child2") events).Span.arg

let test_span_panic_safety () =
  recording @@ fun () ->
  (try
     Span.with_ "outer" (fun () ->
         Span.with_ "boom" (fun () -> failwith "panic"))
   with Failure _ -> ());
  Alcotest.(check (list string))
    "both spans recorded despite the raise" [ "boom"; "outer" ]
    (List.map (fun (e : Span.event) -> e.name) (Span.events ()));
  (* the stack repaired itself: the next span opens at depth 0 *)
  Span.with_ "after" (fun () -> ());
  let after =
    List.find (fun (e : Span.event) -> e.name = "after") (Span.events ())
  in
  Alcotest.(check int) "depth recovered" 0 after.Span.depth

let test_span_disabled () =
  Obs.reset ();
  Alcotest.(check bool) "disarmed by default" false (Span.enabled ());
  Alcotest.(check int) "value passes through" 42
    (Span.with_ "ignored" (fun () -> 42));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.events ()))

let test_scoped_handle () =
  Obs.reset ();
  Obs.scoped Obs.off (fun () ->
      Alcotest.(check bool) "off leaves disarmed" false (Span.enabled ()));
  Obs.scoped Obs.on (fun () ->
      Alcotest.(check bool) "on arms" true (Span.enabled ());
      (* nested scoping is a no-op, and must not disarm on exit *)
      Obs.scoped Obs.on (fun () -> ());
      Alcotest.(check bool) "still armed after nested scope" true
        (Span.enabled ()));
  Alcotest.(check bool) "disarmed after scope" false (Span.enabled ())

let test_spans_across_domains () =
  recording @@ fun () ->
  let ds =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            Span.with_ ~arg:(string_of_int i) "worker" (fun () -> i)))
  in
  let sum = List.fold_left (fun acc d -> acc + Domain.join d) 0 ds in
  Alcotest.(check int) "joined results" 3 sum;
  let events = Span.events () in
  Alcotest.(check int) "one event per domain" 3 (List.length events);
  let tids =
    List.sort_uniq compare (List.map (fun (e : Span.event) -> e.tid) events)
  in
  Alcotest.(check int) "distinct buffers" 3 (List.length tids)

(* --- metrics ------------------------------------------------------------- *)

let test_metrics_basics () =
  Obs.reset ();
  let c = Metrics.counter "test.counter" in
  let g = Metrics.gauge "test.gauge" in
  let d = Metrics.dist "test.dist" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Metrics.Gauge.set g 2.5;
  List.iter (Metrics.Dist.observe d) [ 3; 1; 2 ];
  Alcotest.(check int) "counter" 5 (Metrics.Counter.get c);
  (match Metrics.get "test.dist" with
  | Some (Metrics.Dist s) ->
    Alcotest.(check int) "dist count" 3 s.count;
    Alcotest.(check int) "dist sum" 6 s.sum;
    Alcotest.(check int) "dist min" 1 s.min;
    Alcotest.(check int) "dist max" 3 s.max
  | _ -> Alcotest.fail "dist not registered");
  (* same name, same kind: the one metric *)
  Metrics.Counter.incr (Metrics.counter "test.counter");
  Alcotest.(check int) "idempotent registration" 6 (Metrics.Counter.get c);
  (* same name, different kind: refused *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Metrics.gauge: \"test.counter\" is already registered as a counter")
    (fun () -> ignore (Metrics.gauge "test.counter"));
  (* snapshot is name-sorted and reset keeps registrations *)
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.Counter.get c);
  Alcotest.(check bool) "reset keeps keys" true
    (List.mem "test.counter" (List.map fst (Metrics.snapshot ())))

(* Deterministic metrics must not depend on how many domains split the
   work.  Wall-clock metrics are exempt by the [_ns] suffix convention;
   [sweep.pool.jobs] reports the knob itself, so it is exempt too. *)
let deterministic_snapshot () =
  List.filter
    (fun (name, _) ->
      (not (Filename.check_suffix name "_ns")) && name <> "sweep.pool.jobs")
    (Metrics.snapshot ())

let sweep_once ~jobs =
  Obs.reset ();
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  let matrix =
    match
      Nvsc_sweep.Matrix.make ~apps:[ "gtc" ]
        ~kinds:[ Nvsc_sweep.Cell.Objects; Nvsc_sweep.Cell.Perf ]
        ~scale:0.1 ~iterations:1 ()
    with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  ignore (Nvsc_sweep.Engine.run ~jobs matrix);
  let span_histogram =
    List.sort compare
      (List.map
         (fun (e : Span.event) -> (e.Span.name, e.Span.arg))
         (Span.events ()))
  in
  (deterministic_snapshot (), span_histogram)

let test_determinism_across_jobs () =
  let m1, s1 = sweep_once ~jobs:1 in
  let m4, s4 = sweep_once ~jobs:4 in
  let m8, s8 = sweep_once ~jobs:8 in
  Alcotest.(check bool) "metrics: jobs 1 = jobs 4" true (m1 = m4);
  Alcotest.(check bool) "metrics: jobs 1 = jobs 8" true (m1 = m8);
  Alcotest.(check bool) "span multiset: jobs 1 = jobs 4" true (s1 = s4);
  Alcotest.(check bool) "span multiset: jobs 1 = jobs 8" true (s1 = s8);
  Alcotest.(check bool) "sweep counters flowed through the registry" true
    (List.mem_assoc "sweep.cells" m1 && List.assoc "sweep.cells" m1
     = Metrics.Counter 2)

(* --- Chrome-trace exporter ----------------------------------------------- *)

let test_chrome_trace_roundtrip () =
  recording @@ fun () ->
  Metrics.Counter.add (Metrics.counter "test.roundtrip") 7;
  Span.with_ "outer" (fun () -> Span.with_ ~arg:"gtc" "inner" (fun () -> ()));
  let json = Json.of_string (Json.to_string (Obs.Chrome_trace.to_json ())) in
  let events = Json.to_list (Json.member "traceEvents" json) in
  Alcotest.(check int) "one trace event per span" 2 (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check string) "complete event" "X"
        (Json.to_str (Json.member "ph" e));
      Alcotest.(check bool) "duration is non-negative" true
        (Json.to_float (Json.member "dur" e) >= 0.);
      Alcotest.(check int) "single process" 0
        (Json.to_int (Json.member "pid" e));
      Alcotest.(check int) "dense tid" 0 (Json.to_int (Json.member "tid" e)))
    events;
  let names =
    List.sort compare
      (List.map (fun e -> Json.to_str (Json.member "name" e)) events)
  in
  Alcotest.(check (list string)) "names survive" [ "inner"; "outer" ] names;
  let metrics = Json.member "nvscMetrics" json in
  Alcotest.(check int) "metrics embedded" 7
    (Json.to_int (Json.member "test.roundtrip" metrics))

(* --- the Config redesign -------------------------------------------------- *)

let app = Option.get (Nvsc_apps.Apps.find "gtc")

let test_config_builders () =
  let module C = Nvsc_core.Scavenger.Config in
  let cfg =
    C.(
      default |> with_scale 0.5 |> with_iterations 3 |> with_trace true
      |> with_sampling ~period:100 ~sample_length:10
      |> with_batch_capacity 64
      |> with_sanitize ~check_init:true true
      |> with_shards 4
      |> with_obs Obs.on)
  in
  Alcotest.(check (float 0.)) "scale" 0.5 cfg.C.scale;
  Alcotest.(check int) "iterations" 3 cfg.C.iterations;
  Alcotest.(check bool) "trace" true cfg.C.with_trace;
  Alcotest.(check (option (pair int int))) "sampling" (Some (100, 10))
    cfg.C.sampling;
  Alcotest.(check (option int)) "batch capacity" (Some 64) cfg.C.batch_capacity;
  Alcotest.(check bool) "sanitize" true cfg.C.sanitize;
  Alcotest.(check bool) "check_init" true cfg.C.check_init;
  Alcotest.(check int) "shards" 4 cfg.C.shards;
  Alcotest.(check int) "default shards" 1 C.default.C.shards;
  Alcotest.(check bool) "obs handle" true (Obs.is_armed cfg.C.obs);
  (* updates are functional: default is untouched *)
  Alcotest.(check (float 0.)) "default intact" 1.0 C.default.C.scale

(* [run_legacy] is gone (v2 API cleanup): the sharded run is the config
   surface under equivalence test now — every analysis field must be
   independent of the shard count. *)
let test_sharded_run_equivalence () =
  let module S = Nvsc_core.Scavenger in
  let base =
    S.Config.(default |> with_scale 0.25 |> with_iterations 2
              |> with_trace true)
  in
  let serial = S.run base app in
  let sharded = S.run S.Config.(base |> with_shards 4) app in
  Alcotest.(check int) "footprint" serial.S.footprint_bytes
    sharded.S.footprint_bytes;
  Alcotest.(check int) "main refs" serial.S.total_main_refs
    sharded.S.total_main_refs;
  Alcotest.(check bool) "object metrics" true
    (serial.S.metrics = sharded.S.metrics);
  Alcotest.(check bool) "pipeline stats" true
    (serial.S.pipeline = sharded.S.pipeline);
  Alcotest.(check (float 0.)) "l1 miss rate" serial.S.l1_miss_rate
    sharded.S.l1_miss_rate;
  Alcotest.(check (float 0.)) "l2 miss rate" serial.S.l2_miss_rate
    sharded.S.l2_miss_rate;
  let len r =
    match r.S.mem_trace with
    | Some t -> Nvsc_memtrace.Trace_log.length t
    | None -> -1
  in
  Alcotest.(check int) "trace length" (len serial) (len sharded)

(* The run config arms the recorder for exactly one run. *)
let test_config_scoped_profiling () =
  Obs.reset ();
  let module S = Nvsc_core.Scavenger in
  ignore
    (S.run
       S.Config.(
         default |> with_scale 0.1 |> with_iterations 1 |> with_obs Obs.on)
       app);
  Alcotest.(check bool) "disarmed after the run" false (Span.enabled ());
  let names =
    List.sort_uniq compare
      (List.map (fun (e : Span.event) -> e.Span.name) (Span.events ()))
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " recorded") true (List.mem n names))
    [ "scavenger.run"; "scavenger.setup"; "scavenger.app";
      "scavenger.analysis" ];
  match Metrics.get "scavenger.runs" with
  | Some (Metrics.Counter n) ->
    Alcotest.(check bool) "runs counted" true (n >= 1)
  | _ -> Alcotest.fail "scavenger.runs not registered"

let suite =
  [
    Alcotest.test_case "span nesting, order, self time" `Quick
      test_span_nesting;
    Alcotest.test_case "span panic safety" `Quick test_span_panic_safety;
    Alcotest.test_case "disarmed spans record nothing" `Quick
      test_span_disabled;
    Alcotest.test_case "scoped handle" `Quick test_scoped_handle;
    Alcotest.test_case "per-domain buffers" `Quick test_spans_across_domains;
    Alcotest.test_case "metrics registry" `Quick test_metrics_basics;
    Alcotest.test_case "snapshot deterministic across jobs 1/4/8" `Slow
      test_determinism_across_jobs;
    Alcotest.test_case "chrome trace roundtrips through Json" `Quick
      test_chrome_trace_roundtrip;
    Alcotest.test_case "Config builders" `Quick test_config_builders;
    Alcotest.test_case "sharded run equals serial run" `Slow
      test_sharded_run_equivalence;
    Alcotest.test_case "Config.obs arms one run" `Quick
      test_config_scoped_profiling;
  ]
