(* The nvscav serve subsystem: NDJSON framing, the wire protocol, the
   request planner, the resident pool, and the daemon itself — the last
   exercised in-process over a real Unix socket, including the contract
   the design leans on: client output is byte-identical to the local
   subcommand (checked against the spawned binary), a repeated request
   is a full cache hit, and one client's malformed frames or mid-stream
   disconnect never disturb the others. *)

module Json = Nvsc_util.Json
module Protocol = Nvsc_serve.Protocol
module Plan = Nvsc_serve.Plan
module Server = Nvsc_serve.Server
module Client = Nvsc_serve.Client
module Cell = Nvsc_sweep.Cell
module Pool = Nvsc_sweep.Pool

(* --- Json.Lines framing -------------------------------------------------- *)

let read_all s =
  let r = Json.Lines.of_string s in
  let rec loop acc =
    match Json.Lines.read r with
    | None -> List.rev acc
    | Some item -> loop (item :: acc)
  in
  loop []

let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) int;
            map Json.float float;
            (* raw [string] covers control characters, quotes,
               backslashes and embedded newlines — the characters the
               one-frame-one-line property depends on escaping *)
            map (fun s -> Json.Str s) (string_size (0 -- 24));
          ]
      in
      if n = 0 then scalar
      else
        frequency
          [
            (2, scalar);
            (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
            ( 1,
              map
                (fun l -> Json.Obj l)
                (list_size (0 -- 4)
                   (pair (string_size (0 -- 8)) (self (n / 2)))) );
          ])

let lines_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Lines round-trips any frame sequence"
    (QCheck.make ~print:(fun l ->
         String.concat " | " (List.map Json.to_string l))
       QCheck.Gen.(list_size (0 -- 8) json_gen))
    (fun values ->
      let encoded = String.concat "" (List.map Json.Lines.encode values) in
      (* one frame, one line, by construction *)
      List.for_all
        (fun v ->
          let line = Json.Lines.encode v in
          String.index line '\n' = String.length line - 1)
        values
      &&
      let decoded = read_all encoded in
      List.length decoded = List.length values
      && List.for_all2
           (fun v -> function Ok v' -> v = v' | Error _ -> false)
           values decoded)

let test_lines_truncated () =
  (match read_all "{\"a\":1}\n{\"b\":" with
  | [ Ok _; Error e ] ->
    Alcotest.(check int) "truncation offset" 8 e.Json.Lines.offset;
    Alcotest.(check bool)
      "message names the byte offset" true
      (Astring.String.is_infix ~affix:"byte 8" e.Json.Lines.message
       && Astring.String.is_infix ~affix:"truncated" e.Json.Lines.message)
  | _ -> Alcotest.fail "expected one frame then a truncation error");
  match read_all "" with
  | [] -> ()
  | _ -> Alcotest.fail "empty input is clean EOF, not an error"

let test_lines_oversized () =
  let r = Json.Lines.reader ~max_frame:8 (let s = "\"0123456789abcdef\"\ntrue\n" in
    let pos = ref 0 in
    fun buf dst len ->
      let n = min len (String.length s - !pos) in
      Bytes.blit_string s !pos buf dst n;
      pos := !pos + n;
      n)
  in
  (match Json.Lines.read r with
  | Some (Error e) ->
    Alcotest.(check bool)
      "oversize error names the bound" true
      (Astring.String.is_infix ~affix:"oversized" e.Json.Lines.message)
  | _ -> Alcotest.fail "expected an oversized-frame error");
  (* the oversized frame is skipped to its newline: the stream stays
     usable *)
  match Json.Lines.read r with
  | Some (Ok (Json.Bool true)) -> ()
  | _ -> Alcotest.fail "stream must recover at the next frame boundary"

let test_lines_bad_frames () =
  (match read_all "\ntrue\n" with
  | [ Error e; Ok (Json.Bool true) ] ->
    Alcotest.(check bool)
      "empty frame error" true
      (Astring.String.is_infix ~affix:"empty frame" e.Json.Lines.message)
  | _ -> Alcotest.fail "expected empty-frame error then a frame");
  match read_all "nope\n42\n" with
  | [ Error e; Ok (Json.Int 42) ] ->
    Alcotest.(check int) "parse error carries frame offset" 0
      e.Json.Lines.offset
  | _ -> Alcotest.fail "expected parse error then a frame"

(* --- Metrics.snapshot_json ----------------------------------------------- *)

let test_snapshot_json () =
  let c = Nvsc_obs.Metrics.counter "serve.test.snapshot" in
  Nvsc_obs.Metrics.Counter.incr c;
  let keys = function
    | Json.Obj fields -> List.map fst fields
    | _ -> Alcotest.fail "snapshot_json must be an object"
  in
  let all = keys (Nvsc_obs.Metrics.snapshot_json ()) in
  Alcotest.(check (list string))
    "deterministic (sorted) key order"
    (List.sort compare all) all;
  Alcotest.(check bool)
    "registered counter present" true
    (List.mem "serve.test.snapshot" all);
  let stripped = keys (Nvsc_obs.Metrics.snapshot_json ~strip_time:true ()) in
  Alcotest.(check bool)
    "strip_time drops wall-clock readings" true
    (List.for_all
       (fun k -> not (Astring.String.is_suffix ~affix:"_ns" k))
       stripped)

(* --- protocol codecs ----------------------------------------------------- *)

let requests =
  [
    Protocol.Ping;
    Protocol.Stats { strip_time = true };
    Protocol.Shutdown;
    Protocol.Analyze { app = "gtc"; scale = 0.25; iterations = 3 };
    Protocol.Run { app = "cam"; scale = 1.0; iterations = 10; tech = "pcram" };
    Protocol.Replay { path = "t.nvt"; kind = "place"; tech = "sttram" };
    Protocol.Sweep
      {
        apps = Some [ "gtc"; "cam" ];
        kinds = Some [ "objects"; "perf" ];
        techs = None;
        scale = 0.5;
        iterations = 2;
        overrides = [ "kind=perf,scale=0.25" ];
        from_trace = Some "t.nvt";
      };
  ]

let test_request_roundtrip () =
  List.iteri
    (fun i req ->
      match Protocol.decode_request (Protocol.request_to_json ~id:(i + 1) req) with
      | Ok (id, req') ->
        Alcotest.(check int) "id round-trips" (i + 1) id;
        Alcotest.(check bool) "request round-trips" true (req = req')
      | Error e -> Alcotest.fail (Protocol.error_to_string e))
    requests

let test_frame_roundtrip () =
  let frames =
    [
      Protocol.Hello { protocol = 1; server = "s" };
      Protocol.Progress { id = 3; seq = 0; out = "line one\nline two\n" };
      Protocol.Done_frame
        { id = 3; cells = 4; hits = 1; misses = 3;
          result = Some (Json.Obj [ ("pong", Json.Bool true) ]) };
      Protocol.Done_frame { id = 9; cells = 0; hits = 0; misses = 0; result = None };
      Protocol.Error_frame
        { err_id = Some 7; code = "bad-request"; field = Some "app";
          message = "unknown application" };
      Protocol.Error_frame
        { err_id = None; code = "bad-frame"; field = None; message = "m" };
    ]
  in
  List.iter
    (fun f ->
      match Protocol.frame_of_json (Protocol.frame_to_json f) with
      | Ok f' -> Alcotest.(check bool) "frame round-trips" true (f = f')
      | Error msg -> Alcotest.fail msg)
    frames

let check_error ~code ~field = function
  | Ok _ -> Alcotest.fail "expected a decode error"
  | Error (e : Protocol.error) ->
    Alcotest.(check string) "error code" code e.code;
    Alcotest.(check (option string)) "offending field" field e.field

let test_request_errors () =
  let d = Protocol.decode_request in
  check_error ~code:"bad-request" ~field:(Some "nvsc")
    (d (Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "ping") ]));
  check_error ~code:"version-mismatch" ~field:(Some "nvsc")
    (d (Json.Obj [ ("nvsc", Json.Int 99); ("id", Json.Int 1);
                   ("op", Json.Str "ping") ]));
  check_error ~code:"bad-request" ~field:(Some "id")
    (d (Json.Obj [ ("nvsc", Json.Int 1); ("op", Json.Str "ping") ]));
  check_error ~code:"bad-request" ~field:(Some "op")
    (d (Json.Obj [ ("nvsc", Json.Int 1); ("id", Json.Int 1) ]));
  check_error ~code:"bad-request" ~field:(Some "op")
    (d (Json.Obj [ ("nvsc", Json.Int 1); ("id", Json.Int 1);
                   ("op", Json.Str "frobnicate") ]));
  check_error ~code:"bad-request" ~field:(Some "app")
    (d (Json.Obj [ ("nvsc", Json.Int 1); ("id", Json.Int 1);
                   ("op", Json.Str "analyze") ]));
  check_error ~code:"bad-request" ~field:(Some "scale")
    (d (Json.Obj [ ("nvsc", Json.Int 1); ("id", Json.Int 1);
                   ("op", Json.Str "analyze");
                   ("args", Json.Obj [ ("app", Json.Str "gtc");
                                       ("scale", Json.Str "big") ]) ]));
  check_error ~code:"bad-request" ~field:None (d (Json.Str "nope"))

(* --- plans ---------------------------------------------------------------- *)

let test_plan_shapes () =
  (match Plan.of_request (Protocol.Analyze { app = "gtc"; scale = 0.1; iterations = 1 }) with
  | Ok plan ->
    Alcotest.(check int) "analyze is one cell" 1 (Array.length plan.Plan.specs);
    Alcotest.(check bool) "objects kind" true
      (plan.Plan.specs.(0).Cell.kind = Cell.Objects)
  | Error e -> Alcotest.fail (Protocol.error_to_string e));
  match
    Plan.of_request
      (Protocol.Run { app = "gtc"; scale = 0.1; iterations = 1; tech = "pcram" })
  with
  | Ok plan ->
    Alcotest.(check int) "run is three cells" 3 (Array.length plan.Plan.specs);
    Alcotest.(check bool) "objects, power, place" true
      (Array.map (fun s -> s.Cell.kind) plan.Plan.specs
      = [| Cell.Objects; Cell.Power; Cell.Place |]);
    Alcotest.(check bool) "place cell carries the tech" true
      (plan.Plan.specs.(2).Cell.tech = Some Nvsc_nvram.Technology.PCRAM)
  | Error e -> Alcotest.fail (Protocol.error_to_string e)

let plan_error ~field req =
  match Plan.of_request req with
  | Ok _ -> Alcotest.fail "expected the plan to be rejected"
  | Error e ->
    Alcotest.(check string) "bad-request" "bad-request" e.Protocol.code;
    Alcotest.(check (option string)) "offending field" (Some field)
      e.Protocol.field

let test_plan_errors () =
  plan_error ~field:"app"
    (Protocol.Analyze { app = "nosuchapp"; scale = 1.; iterations = 1 });
  plan_error ~field:"scale"
    (Protocol.Analyze { app = "gtc"; scale = 0.; iterations = 1 });
  plan_error ~field:"iterations"
    (Protocol.Analyze { app = "gtc"; scale = 1.; iterations = 0 });
  plan_error ~field:"tech"
    (Protocol.Run { app = "gtc"; scale = 1.; iterations = 1; tech = "unobtainium" });
  plan_error ~field:"path"
    (Protocol.Replay { path = "/nonexistent.nvt"; kind = "run"; tech = "sttram" });
  plan_error ~field:"kinds"
    (Protocol.Sweep
       { apps = None; kinds = Some [ "nosuchkind" ]; techs = None; scale = 1.;
         iterations = 1; overrides = []; from_trace = None });
  plan_error ~field:"overrides"
    (Protocol.Sweep
       { apps = None; kinds = None; techs = None; scale = 1.; iterations = 1;
         overrides = [ "bogus=1" ]; from_trace = None })

(* --- resident pool -------------------------------------------------------- *)

let test_pool_resident () =
  let pool = Pool.create ~jobs:2 () in
  let tickets =
    List.init 16 (fun i -> Pool.submit pool (fun () -> i * i))
  in
  List.iteri
    (fun i ticket ->
      match Pool.await ticket with
      | Pool.Done v -> Alcotest.(check int) "task result" (i * i) v
      | _ -> Alcotest.fail "task should complete")
    tickets;
  (match Pool.await (Pool.submit ~cancelled:(fun () -> true) pool (fun () -> 1)) with
  | Pool.Cancelled -> ()
  | _ -> Alcotest.fail "a cancelled task must never run");
  (match Pool.await (Pool.submit pool (fun () -> failwith "boom")) with
  | Pool.Failed (Failure msg) when msg = "boom" -> ()
  | _ -> Alcotest.fail "exceptions surface as Failed");
  Pool.shutdown pool;
  match Pool.submit pool (fun () -> 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit after shutdown must be rejected"

let test_pool_shutdown_cancels_queued () =
  let pool = Pool.create ~jobs:1 () in
  let blocker = Pool.submit pool (fun () -> Thread.delay 0.3; "done") in
  (* give the single worker time to pick the blocker up *)
  Thread.delay 0.05;
  let queued = Pool.submit pool (fun () -> "ran") in
  Pool.shutdown pool;
  (match Pool.await blocker with
  | Pool.Done "done" -> ()
  | _ -> Alcotest.fail "a running task completes across shutdown");
  match Pool.await queued with
  | Pool.Cancelled -> ()
  | _ -> Alcotest.fail "a never-started task resolves as Cancelled"

(* --- the daemon, in-process over a real socket ---------------------------- *)

let temp_dir () =
  let path = Filename.temp_file "nvscav-serve-test" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_server ?(jobs = 2) ?max_frame ?max_queue f =
  let dir = temp_dir () in
  let sock = Filename.concat dir "nvscav.sock" in
  let cfg =
    {
      Server.default with
      socket = Some sock;
      jobs = Some jobs;
      cache_dir = Some (Filename.concat dir "cache");
      max_frame = Option.value max_frame ~default:Server.default.Server.max_frame;
      max_queue = Option.value max_queue ~default:Server.default.Server.max_queue;
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      remove_tree dir)
    (fun () -> f ~sock t)

let connect_exn sock =
  match Client.connect ~socket:sock () with
  | Ok c -> c
  | Error msg -> Alcotest.fail msg

let request_exn ?on_output c req =
  match Client.request ?on_output c req with
  | Ok reply -> reply
  | Error msg -> Alcotest.fail msg

let collect_output c req =
  let buf = Buffer.create 1024 in
  let reply = request_exn ~on_output:(Buffer.add_string buf) c req in
  (Buffer.contents buf, reply)

let analyze_req =
  Protocol.Analyze { app = "gtc"; scale = 0.1; iterations = 1 }

let test_ping_and_stats () =
  with_server @@ fun ~sock _t ->
  let c = connect_exn sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let reply = request_exn c Protocol.Ping in
  Alcotest.(check int) "ping touches no cells" 0 reply.Client.cells;
  let reply = request_exn c (Protocol.Stats { strip_time = true }) in
  match reply.Client.result with
  | Some json ->
    Alcotest.(check int) "stats reports the protocol version" Protocol.version
      (Json.to_int (Json.member "protocol" json));
    (match Json.member "metrics" json with
    | Json.Obj _ -> ()
    | _ -> Alcotest.fail "stats carries the metrics registry")
  | None -> Alcotest.fail "stats must return a result"

let test_warm_cache () =
  with_server @@ fun ~sock _t ->
  let c = connect_exn sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let cold_out, cold = collect_output c analyze_req in
  Alcotest.(check int) "cold request misses every cell" cold.Client.cells
    cold.Client.misses;
  let warm_out, warm = collect_output c analyze_req in
  Alcotest.(check int) "warm request misses nothing" 0 warm.Client.misses;
  Alcotest.(check int) "warm request hits every cell" warm.Client.cells
    warm.Client.hits;
  Alcotest.(check string) "cached output is byte-identical" cold_out warm_out

(* Four concurrent clients — two analyzes, a sweep and a stats poll —
   each checked byte-for-byte against the spawned local binary. *)
let test_concurrent_clients_byte_identical () =
  let expected_analyze =
    let code, out, err =
      Test_cli_exit.run_nvscav
        [ "analyze"; "gtc"; "--scale"; "0.1"; "--iterations"; "1" ]
    in
    Alcotest.(check int) ("local analyze: " ^ err) 0 code;
    out
  in
  let expected_sweep =
    let code, out, err =
      Test_cli_exit.run_nvscav
        [ "sweep"; "--apps"; "gtc"; "--kinds"; "objects,place"; "--scale";
          "0.1"; "--iterations"; "1" ]
    in
    Alcotest.(check int) ("local sweep: " ^ err) 0 code;
    out
  in
  let sweep_req =
    Protocol.Sweep
      { apps = Some [ "gtc" ]; kinds = Some [ "objects"; "place" ];
        techs = None; scale = 0.1; iterations = 1; overrides = [];
        from_trace = None }
  in
  with_server @@ fun ~sock _t ->
  let results = Array.make 4 (Error "never ran") in
  let worker i req () =
    results.(i) <-
      (match Client.connect ~socket:sock () with
      | Error msg -> Error msg
      | Ok c ->
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let buf = Buffer.create 1024 in
        (match Client.request ~on_output:(Buffer.add_string buf) c req with
        | Error msg -> Error msg
        | Ok reply -> Ok (Buffer.contents buf, reply)))
  in
  let threads =
    [
      Thread.create (worker 0 analyze_req) ();
      Thread.create (worker 1 sweep_req) ();
      Thread.create (worker 2 (Protocol.Stats { strip_time = true })) ();
      Thread.create (worker 3 analyze_req) ();
    ]
  in
  List.iter Thread.join threads;
  let output i =
    match results.(i) with
    | Ok (out, reply) -> (out, reply)
    | Error msg -> Alcotest.fail (Printf.sprintf "client %d: %s" i msg)
  in
  let out0, _ = output 0 in
  let out1, _ = output 1 in
  let _, stats_reply = output 2 in
  let out3, _ = output 3 in
  Alcotest.(check string) "client analyze is byte-identical to local"
    expected_analyze out0;
  Alcotest.(check string) "client sweep is byte-identical to local"
    expected_sweep out1;
  Alcotest.(check string) "concurrent identical analyzes agree" out0 out3;
  Alcotest.(check bool) "stats served alongside analyses" true
    (stats_reply.Client.result <> None);
  (* both analyze clients wanted the same objects cell, and the sweep
     shared it too: the pool computed it at most twice (the concurrent
     cold requests may race), never four times *)
  let c = connect_exn sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let _, warm = collect_output c analyze_req in
  Alcotest.(check int) "afterwards the cache is warm" 0 warm.Client.misses

(* --- raw-socket abuse ----------------------------------------------------- *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let reader =
    Json.Lines.reader (fun buf pos len ->
        try Unix.read fd buf pos len
        with Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0)
  in
  (match Json.Lines.read reader with
  | Some (Ok json) -> (
    match Protocol.frame_of_json json with
    | Ok (Protocol.Hello _) -> ()
    | _ -> Alcotest.fail "expected a hello frame")
  | _ -> Alcotest.fail "expected a hello frame");
  (fd, reader)

let raw_send fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "short write" (String.length s) n

let raw_read_frame reader =
  match Json.Lines.read reader with
  | Some (Ok json) -> (
    match Protocol.frame_of_json json with
    | Ok f -> f
    | Error msg -> Alcotest.fail msg)
  | Some (Error e) -> Alcotest.fail e.Json.Lines.message
  | None -> Alcotest.fail "connection closed unexpectedly"

let expect_error ~code frame =
  match frame with
  | Protocol.Error_frame e ->
    Alcotest.(check string) "error code" code e.Protocol.code
  | _ -> Alcotest.fail ("expected an error frame with code " ^ code)

let test_malformed_frames () =
  with_server ~max_frame:256 @@ fun ~sock _t ->
  let fd, reader = raw_connect sock in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* unparseable JSON *)
  raw_send fd "this is not json\n";
  expect_error ~code:"bad-frame" (raw_read_frame reader);
  (* oversized frame — skipped to its newline, connection survives *)
  raw_send fd (String.make 300 'x' ^ "\n");
  expect_error ~code:"bad-frame" (raw_read_frame reader);
  (* well-formed JSON, wrong shape: names the offending field *)
  raw_send fd "{\"id\":7,\"op\":\"ping\"}\n";
  (match raw_read_frame reader with
  | Protocol.Error_frame e ->
    Alcotest.(check string) "code" "bad-request" e.Protocol.code;
    Alcotest.(check (option string)) "field" (Some "nvsc") e.Protocol.field;
    Alcotest.(check (option int)) "id echoed" (Some 7) e.Protocol.err_id
  | _ -> Alcotest.fail "expected an error frame");
  (* version mismatch *)
  raw_send fd "{\"nvsc\":99,\"id\":8,\"op\":\"ping\"}\n";
  expect_error ~code:"version-mismatch" (raw_read_frame reader);
  (* and after all that abuse, a valid request still works *)
  raw_send fd
    (Json.Lines.encode (Protocol.request_to_json ~id:9 Protocol.Ping));
  match raw_read_frame reader with
  | Protocol.Done_frame { id; _ } -> Alcotest.(check int) "ping answered" 9 id
  | _ -> Alcotest.fail "expected the ping's done frame"

let test_disconnect_leaves_server_serving () =
  with_server ~jobs:1 @@ fun ~sock _t ->
  (* client A starts a three-cell request and vanishes after the first
     progress frame *)
  let fd, reader = raw_connect sock in
  raw_send fd
    (Json.Lines.encode
       (Protocol.request_to_json ~id:1
          (Protocol.Run
             { app = "gtc"; scale = 0.1; iterations = 1; tech = "sttram" })));
  (match raw_read_frame reader with
  | Protocol.Progress { seq; _ } -> Alcotest.(check int) "first chunk" 0 seq
  | _ -> Alcotest.fail "expected the first progress frame");
  Unix.close fd;
  (* client B is served as if nothing happened *)
  let c = connect_exn sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let out, reply = collect_output c analyze_req in
  Alcotest.(check bool) "analyze still served" true (String.length out > 0);
  Alcotest.(check int) "one cell" 1 reply.Client.cells;
  let reply = request_exn c Protocol.Ping in
  Alcotest.(check int) "still answering pings" 0 reply.Client.cells

let test_shutdown_request () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "nvscav.sock" in
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let t =
    Server.start
      { Server.default with socket = Some sock;
        cache_dir = Some (Filename.concat dir "cache"); jobs = Some 1 }
  in
  let c = connect_exn sock in
  let _ = request_exn c Protocol.Shutdown in
  Client.close c;
  Server.await t;
  Alcotest.(check bool) "socket file removed on shutdown" false
    (Sys.file_exists sock)

let suite =
  [
    QCheck_alcotest.to_alcotest lines_roundtrip;
    Alcotest.test_case "Lines: truncated frames" `Quick test_lines_truncated;
    Alcotest.test_case "Lines: oversized frames" `Quick test_lines_oversized;
    Alcotest.test_case "Lines: empty and unparseable frames" `Quick
      test_lines_bad_frames;
    Alcotest.test_case "Metrics.snapshot_json" `Quick test_snapshot_json;
    Alcotest.test_case "protocol: request round-trip" `Quick
      test_request_roundtrip;
    Alcotest.test_case "protocol: frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "protocol: errors name the field" `Quick
      test_request_errors;
    Alcotest.test_case "plan: request decomposition" `Quick test_plan_shapes;
    Alcotest.test_case "plan: validation errors" `Quick test_plan_errors;
    Alcotest.test_case "pool: resident submit/await" `Quick test_pool_resident;
    Alcotest.test_case "pool: shutdown cancels queued tasks" `Quick
      test_pool_shutdown_cancels_queued;
    Alcotest.test_case "server: ping and stats" `Quick test_ping_and_stats;
    Alcotest.test_case "server: repeated request is a full cache hit" `Slow
      test_warm_cache;
    Alcotest.test_case "server: concurrent clients, byte-identical output"
      `Slow test_concurrent_clients_byte_identical;
    Alcotest.test_case "server: malformed frames answered, connection kept"
      `Quick test_malformed_frames;
    Alcotest.test_case "server: disconnect cancels only that client" `Slow
      test_disconnect_leaves_server_serving;
    Alcotest.test_case "server: shutdown request stops the daemon" `Quick
      test_shutdown_request;
  ]
