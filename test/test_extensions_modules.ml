(* Tests of the extension substrates: the sampler, the trace-file format,
   the DRAM page cache, the checkpoint model, the row-buffer policy, and
   the ASCII plot rendering. *)

module Sampler = Nvsc_memtrace.Sampler
module Trace_file = Nvsc_memtrace.Trace_file
module Trace_log = Nvsc_memtrace.Trace_log
module Access = Nvsc_memtrace.Access
module DC = Nvsc_placement.Dram_cache
module CP = Nvsc_placement.Checkpoint
module Tech = Nvsc_nvram.Technology

(* --- sampler ------------------------------------------------------------ *)

let test_sampler_window () =
  let forwarded = ref [] in
  let s =
    Sampler.create ~period:5 ~sample_length:2 ~sink:(fun a ->
        forwarded := a.Access.addr :: !forwarded)
  in
  for i = 0 to 9 do
    Sampler.push s (Access.read ~addr:i ~size:8)
  done;
  Alcotest.(check (list int)) "first 2 of each 5" [ 0; 1; 5; 6 ]
    (List.rev !forwarded);
  Alcotest.(check int) "seen" 10 (Sampler.seen s);
  Alcotest.(check int) "forwarded" 4 (Sampler.forwarded s);
  Alcotest.(check int) "dropped" 6 (Sampler.dropped s);
  Alcotest.(check (float 1e-9)) "ratio" 0.4 (Sampler.sampling_ratio s)

let test_sampler_validation () =
  Alcotest.check_raises "bad"
    (Invalid_argument "Sampler.create: need 0 < sample_length <= period")
    (fun () -> ignore (Sampler.create ~period:5 ~sample_length:6 ~sink:ignore))

let test_ctx_sampling () =
  let ctx = Nvsc_appkit.Ctx.create () in
  Nvsc_appkit.Ctx.set_sampling ctx ~period:2 ~sample_length:1;
  let a = Nvsc_appkit.Farray.global ctx ~name:"g" 8 in
  for i = 0 to 7 do
    ignore (Nvsc_appkit.Farray.get a i)
  done;
  Alcotest.(check int) "half observed" 4 (Nvsc_appkit.Ctx.total_references ctx);
  Alcotest.(check int) "half dropped" 4 (Nvsc_appkit.Ctx.sampled_out ctx)

(* --- trace file ---------------------------------------------------------- *)

let test_trace_file_roundtrip () =
  let log = Trace_log.create () in
  Trace_log.record log (Access.read ~addr:0x1a40 ~size:64);
  Trace_log.record log (Access.write ~addr:0x2000 ~size:64);
  let path = Filename.temp_file "nvsc_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_file.save log path;
      let loaded = Trace_file.load path in
      Alcotest.(check int) "length" 2 (Trace_log.length loaded);
      let a0 = Trace_log.get loaded 0 and a1 = Trace_log.get loaded 1 in
      Alcotest.(check int) "addr 0" 0x1a40 a0.Access.addr;
      Alcotest.(check bool) "read" true (Access.is_read a0);
      Alcotest.(check bool) "write" true (Access.is_write a1))

let test_trace_file_parsing () =
  Alcotest.(check bool) "comment skipped" true
    (Trace_file.parse_record "# comment" = None);
  Alcotest.(check bool) "blank skipped" true (Trace_file.parse_record "  " = None);
  (match Trace_file.parse_record "0x40 P_MEM_WR 7" with
  | Some a ->
    Alcotest.(check int) "addr" 0x40 a.Access.addr;
    Alcotest.(check bool) "op" true (Access.is_write a)
  | None -> Alcotest.fail "expected record");
  (* DRAMSim2 alternate verbs *)
  (match Trace_file.parse_record "0x80 READ 0" with
  | Some a -> Alcotest.(check bool) "READ accepted" true (Access.is_read a)
  | None -> Alcotest.fail "expected record");
  Alcotest.(check bool) "malformed raises" true
    (try
       ignore (Trace_file.parse_record "0x40 BOGUS 7");
       false
     with Failure _ -> true)

(* --- DRAM page cache ------------------------------------------------------ *)

let small_cache () = DC.create ~dram_pages:8 ~associativity:2 ~tech:(Tech.get Tech.PCRAM) ()

let test_dram_cache_hit_path () =
  let dc = small_cache () in
  DC.access dc (Access.read ~addr:0 ~size:64);
  DC.access dc (Access.read ~addr:64 ~size:64);
  let s = DC.stats dc in
  Alcotest.(check int) "one miss, one hit (same page)" 1 s.DC.hits;
  Alcotest.(check int) "fills" 1 s.DC.fills;
  (* miss latency includes the page fill; hit is DRAM-speed *)
  Alcotest.(check bool) "avg latency between hit and miss cost" true
    (s.DC.avg_latency_ns > 10. && s.DC.avg_latency_ns < 400.)

let test_dram_cache_dirty_writeback () =
  let dc = DC.create ~dram_pages:2 ~associativity:1 ~tech:(Tech.get Tech.PCRAM) () in
  DC.access dc (Access.write ~addr:0 ~size:64);
  DC.drain dc;
  let s = DC.stats dc in
  Alcotest.(check int) "writeback on drain" 1 s.DC.dirty_writebacks;
  Alcotest.(check int) "64 NVRAM line writes per page" 64 s.DC.nvram_line_writes

let test_dram_cache_poor_locality_loses () =
  let points =
    Nvsc_core.Extensions.dram_cache_crossover ~accesses:20_000
      ~hot_fractions:[ 0.99; 0.2 ] ()
  in
  match points with
  | [ good; bad ] ->
    Alcotest.(check bool) "high locality wins" true
      good.Nvsc_core.Extensions.dram_cache_wins;
    Alcotest.(check bool) "poor locality loses (paper §II)" false
      bad.Nvsc_core.Extensions.dram_cache_wins;
    Alcotest.(check bool) "hit rates ordered" true
      (good.Nvsc_core.Extensions.hit_rate > bad.Nvsc_core.Extensions.hit_rate)
  | _ -> Alcotest.fail "two points expected"

let test_dram_cache_validation () =
  Alcotest.(check bool) "DRAM backing rejected" true
    (try
       ignore (DC.create ~tech:(Tech.get Tech.DDR3) ());
       false
     with Invalid_argument _ -> true)

(* --- checkpoint model ------------------------------------------------------ *)

let test_checkpoint_times () =
  let pfs = CP.parallel_fs () in
  let nv = CP.nvram_local (Tech.get Tech.PCRAM) in
  let size = 8 * 1024 * 1024 * 1024 in
  let t_pfs = CP.checkpoint_time_s pfs ~size_bytes:size in
  let t_nv = CP.checkpoint_time_s nv ~size_bytes:size in
  Alcotest.(check bool) "NVRAM much faster" true (t_nv < t_pfs /. 4.);
  Alcotest.(check bool) "bus-bound bandwidth" true
    (nv.CP.bandwidth_bytes_per_s <= 12.8e9 +. 1.)

let test_checkpoint_young () =
  let t = CP.young_interval_s ~checkpoint_time_s:100. ~mtbf_s:20_000. in
  Alcotest.(check (float 1e-6)) "young" 2000. t;
  let eff_fast = CP.efficiency ~checkpoint_time_s:1. ~mtbf_s:20_000. in
  let eff_slow = CP.efficiency ~checkpoint_time_s:100. ~mtbf_s:20_000. in
  Alcotest.(check bool) "faster checkpoints, better efficiency" true
    (eff_fast > eff_slow);
  Alcotest.(check bool) "efficiency in range" true
    (eff_fast > 0.9 && eff_slow > 0.5 && eff_fast <= 1.)

let test_checkpoint_validation () =
  Alcotest.(check bool) "volatile rejected" true
    (try
       ignore (CP.nvram_local (Tech.get Tech.DDR3));
       false
     with Invalid_argument _ -> true)

(* --- row policy ------------------------------------------------------------ *)

let test_row_policy () =
  let trace = Trace_log.create () in
  for i = 0 to 999 do
    Trace_log.record trace (Access.read ~addr:(i * 64) ~size:64)
  done;
  match
    Nvsc_core.Extensions.row_policy_ablation trace ~tech:(Tech.get Tech.DDR3)
  with
  | [ (Nvsc_dramsim.Controller.Open_page, op); (Closed_page, cp) ] ->
    Alcotest.(check bool) "open-page row hits on stream" true
      (op.Nvsc_dramsim.Controller.row_hit_rate > 0.9);
    Alcotest.(check (float 1e-9)) "closed-page never hits" 0.
      cp.Nvsc_dramsim.Controller.row_hit_rate;
    Alcotest.(check bool) "open-page faster on stream" true
      (op.Nvsc_dramsim.Controller.elapsed_ns
      <= cp.Nvsc_dramsim.Controller.elapsed_ns)
  | _ -> Alcotest.fail "two policies expected"

(* --- ascii plots ------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_plot_line () =
  let s =
    Nvsc_util.Ascii_plot.line ~title:"t" ~width:20 ~height:5
      [ ("a", [ (0., 0.); (1., 1.) ]); ("b", [ (0.5, 0.5) ]) ]
  in
  Alcotest.(check bool) "title" true (contains ~needle:"-- t --" s);
  Alcotest.(check bool) "legend a" true (contains ~needle:"* a" s);
  Alcotest.(check bool) "legend b" true (contains ~needle:"+ b" s);
  Alcotest.(check bool) "glyphs plotted" true
    (contains ~needle:"*" s && contains ~needle:"+" s)

let test_plot_empty () =
  let s = Nvsc_util.Ascii_plot.line [ ("a", []) ] in
  Alcotest.(check bool) "empty notice" true (contains ~needle:"(no data)" s)

let test_plot_bars () =
  let s =
    Nvsc_util.Ascii_plot.bars ~width:10 [ ("x", 1.0); ("yy", 0.5) ]
  in
  Alcotest.(check bool) "full bar" true (contains ~needle:"==========" s);
  Alcotest.(check bool) "half bar" true (contains ~needle:"===== 0.5" s)

(* --- extension analyses (smoke, reduced scale) ----------------------------- *)

let test_sampling_ablation_detects_loss () =
  let a =
    Nvsc_core.Extensions.sampling_ablation ~scale:0.25 ~iterations:3
      ~period:10_000 ~sample_length:100
      (Option.get (Nvsc_apps.Apps.find "nek5000"))
  in
  Alcotest.(check bool) "objects lost or misclassified" true
    (a.Nvsc_core.Extensions.lost_objects > 0
    || a.Nvsc_core.Extensions.misclassified_read_only > 0);
  Alcotest.(check (float 1e-9)) "1% ratio" 0.01
    a.Nvsc_core.Extensions.sampling_ratio

let test_fine_monitor_windows () =
  let ctx = Nvsc_appkit.Ctx.create () in
  let seen = ref [] in
  let m =
    Nvsc_core.Fine_monitor.attach ctx ~window_refs:10 ~on_window:(fun counts ->
        seen := counts :: !seen)
  in
  let a = Nvsc_appkit.Farray.global ctx ~name:"g" 8 in
  for _ = 1 to 25 do
    ignore (Nvsc_appkit.Farray.get a 0)
  done;
  (* references are batched in the Ctx until a boundary flush *)
  Nvsc_appkit.Ctx.flush_refs ctx;
  Alcotest.(check int) "two full windows" 2 (Nvsc_core.Fine_monitor.windows m);
  Nvsc_core.Fine_monitor.flush m;
  Alcotest.(check int) "partial window flushed" 3
    (Nvsc_core.Fine_monitor.windows m);
  Alcotest.(check int) "all refs seen" 25
    (Nvsc_core.Fine_monitor.references_seen m);
  (* each full window attributed 10 reads to the object *)
  (match List.rev !seen with
  | (counts : Nvsc_core.Fine_monitor.window_counts) :: _ ->
    (match counts with
    | [ (_, reads, writes) ] ->
      Alcotest.(check int) "window reads" 10 reads;
      Alcotest.(check int) "window writes" 0 writes
    | _ -> Alcotest.fail "one object expected")
  | [] -> Alcotest.fail "windows expected")

let test_fine_grained_placement () =
  let f =
    Nvsc_core.Extensions.fine_grained_placement ~scale:0.25 ~iterations:3
      ~window_refs:50_000
      (Option.get (Nvsc_apps.Apps.find "nek5000"))
  in
  Alcotest.(check bool) "sub-iteration decision points" true
    (f.Nvsc_core.Extensions.windows > 3);
  Alcotest.(check bool) "residency in range" true
    (f.Nvsc_core.Extensions.avg_nvram_fraction >= 0.
    && f.Nvsc_core.Extensions.avg_nvram_fraction <= 1.);
  Alcotest.(check bool) "the policy reacted" true
    (f.Nvsc_core.Extensions.migrations > 0)

let test_hybrid_simulation_bounds () =
  (* the experiment the paper's SSSV could not run: hybrid power must land
     between the all-DRAM and all-NVRAM bounds, and the static plan must
     keep writes off the NVRAM side *)
  let h =
    Nvsc_core.Extensions.hybrid_simulation ~scale:0.25 ~iterations:3
      (Option.get (Nvsc_apps.Apps.find "cam"))
  in
  let power name =
    let _, p, _ = List.find (fun (n, _, _) -> n = name) h.designs in
    p
  in
  let all_nvram = power "all-STTRAM" and hybrid = power "hybrid" in
  Alcotest.(check (float 1e-9)) "all-DRAM is the baseline" 1.0 (power "all-DRAM");
  Alcotest.(check bool) "hybrid saves something" true (hybrid < 1.0);
  Alcotest.(check bool) "hybrid above the all-NVRAM bound" true
    (hybrid >= all_nvram -. 1e-9);
  Alcotest.(check bool) "writes mostly stay in DRAM" true
    (h.nvram_write_fraction < 0.2);
  Alcotest.(check bool) "accesses routed" true (h.nvram_access_fraction > 0.01)

let test_power_sensitivity_robust () =
  (* the headline conclusion must survive controller design choices *)
  let grid =
    Nvsc_core.Extensions.power_sensitivity ~scale:0.25 ~iterations:3
      (Option.get (Nvsc_apps.Apps.find "cam"))
  in
  Alcotest.(check int) "four configurations" 4 (List.length grid);
  List.iter
    (fun (label, powers) ->
      let get tech =
        snd (List.find (fun ((t : Tech.t), _) -> t.tech = tech) powers)
      in
      let p = get Tech.PCRAM and s = get Tech.STTRAM and m = get Tech.MRAM in
      (* invariant across all controller designs: substantial savings and
         PCRAM (the most diluted device) lowest *)
      Alcotest.(check bool) (label ^ ": saves power") true
        (p < 0.85 && s < 0.85 && m < 0.85);
      Alcotest.(check bool) (label ^ ": PCRAM lowest") true
        (p <= s +. 1e-9 && p <= m +. 1e-9))
    grid;
  (* the paper's full STTRAM <= MRAM ordering holds under the paper's
     open-page policy (first two configurations); under closed-page the
     activation cost flips it — a finding, not a bug *)
  List.iteri
    (fun i (label, powers) ->
      if i < 2 then begin
        let get tech =
          snd (List.find (fun ((t : Tech.t), _) -> t.tech = tech) powers)
        in
        Alcotest.(check bool) (label ^ ": STTRAM <= MRAM") true
          (get Tech.STTRAM <= get Tech.MRAM +. 1e-9)
      end)
    grid

let test_placement_summary_shape () =
  let p =
    Nvsc_core.Extensions.placement_summary ~scale:0.25 ~iterations:3
      (Option.get (Nvsc_apps.Apps.find "nek5000"))
  in
  Alcotest.(check bool) "dynamic places more" true
    (p.Nvsc_core.Extensions.dynamic_nvram_fraction
    >= p.Nvsc_core.Extensions.static_nvram_fraction);
  Alcotest.(check bool) "bounds sane" true
    (p.Nvsc_core.Extensions.static_slowdown_bound >= 1.0
    && p.Nvsc_core.Extensions.dynamic_slowdown_bound < 1.5)

let suite =
  [
    Alcotest.test_case "sampler window" `Quick test_sampler_window;
    Alcotest.test_case "sampler validation" `Quick test_sampler_validation;
    Alcotest.test_case "ctx sampling" `Quick test_ctx_sampling;
    Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip;
    Alcotest.test_case "trace file parsing" `Quick test_trace_file_parsing;
    Alcotest.test_case "dram cache hit path" `Quick test_dram_cache_hit_path;
    Alcotest.test_case "dram cache dirty writeback" `Quick
      test_dram_cache_dirty_writeback;
    Alcotest.test_case "dram cache poor locality" `Quick
      test_dram_cache_poor_locality_loses;
    Alcotest.test_case "dram cache validation" `Quick test_dram_cache_validation;
    Alcotest.test_case "checkpoint times" `Quick test_checkpoint_times;
    Alcotest.test_case "checkpoint Young interval" `Quick test_checkpoint_young;
    Alcotest.test_case "checkpoint validation" `Quick test_checkpoint_validation;
    Alcotest.test_case "row policy ablation" `Quick test_row_policy;
    Alcotest.test_case "plot line" `Quick test_plot_line;
    Alcotest.test_case "plot empty" `Quick test_plot_empty;
    Alcotest.test_case "plot bars" `Quick test_plot_bars;
    Alcotest.test_case "sampling ablation detects loss" `Slow
      test_sampling_ablation_detects_loss;
    Alcotest.test_case "fine monitor windows" `Quick test_fine_monitor_windows;
    Alcotest.test_case "fine-grained placement" `Slow
      test_fine_grained_placement;
    Alcotest.test_case "hybrid simulation bounds" `Slow
      test_hybrid_simulation_bounds;
    Alcotest.test_case "power sensitivity robust" `Slow
      test_power_sensitivity_robust;
    Alcotest.test_case "placement summary shape" `Slow
      test_placement_summary_shape;
  ]
