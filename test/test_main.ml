let () =
  Alcotest.run "nv_scavenger"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("histogram", Test_histogram.suite);
      ("table-units", Test_table_units.suite);
      ("access-layout", Test_access_layout.suite);
      ("mem-object", Test_mem_object.suite);
      ("object-registry", Test_registry.suite);
      ("shadow-stack", Test_shadow_stack.suite);
      ("counters", Test_counters.suite);
      ("buffers", Test_buffers.suite);
      ("trace-gen", Test_trace_gen.suite);
      ("cache", Test_cache.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("kernel-differential", Test_differential.suite);
      ("org-mapping", Test_org_mapping.suite);
      ("dramsim", Test_dramsim.suite);
      ("scheduler", Test_scheduler.suite);
      ("hybrid-system", Test_hybrid_system.suite);
      ("cpusim", Test_cpusim.suite);
      ("nvram", Test_nvram.suite);
      ("wear-leveling", Test_wear_leveling.suite);
      ("extensions", Test_extensions_modules.suite);
      ("placement", Test_placement.suite);
      ("appkit", Test_appkit.suite);
      ("apps", Test_apps.suite);
      ("extra-apps", Test_extra_apps.suite);
      ("core-analysis", Test_core.suite);
      ("pipeline-fuzz", Test_pipeline_fuzz.suite);
      ("sanitizer", Test_sanitizer.suite);
      ("interval-traffic", Test_interval_traffic.suite);
      ("report-experiment", Test_report_experiment.suite);
      ("paper-shapes", Test_shapes.suite);
      ("sweep", Test_sweep.suite);
      ("obs", Test_obs.suite);
    ]
