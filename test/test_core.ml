(* Unit tests of the analysis layer against a tiny hand-built application
   whose counts are known exactly. *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module Mem_object = Nvsc_memtrace.Mem_object
module OM = Nvsc_core.Object_metrics

module Toy_app : Nvsc_apps.Workload.APP = struct
  let name = "toy"
  let description = "hand-built fixture"
  let input_description = "fixed"
  let paper_footprint_mb = 0.

  (* Objects:
     - "ro": 8 words, read 4x per iteration, written only in Pre
     - "rw": 8 words, 2 reads + 1 write per iteration
     - "idle": 16 words, touched only in Post
     - heap "hp": 4 words, 1 write per iteration
     - routine "k": 2 stack writes + 6 stack reads per iteration *)
  let run ?scale ctx ~iterations =
    ignore scale;
    Ctx.set_phase ctx Mem_object.Pre;
    let ro = Farray.global ctx ~name:"ro" 8 in
    let rw = Farray.global ctx ~name:"rw" 8 in
    let idle = Farray.global ctx ~name:"idle" 16 in
    let hp = Farray.heap ctx ~site:"hp" 4 in
    Farray.fill ctx ro 1.;
    for iter = 1 to iterations do
      Ctx.set_phase ctx (Mem_object.Main iter);
      for i = 0 to 3 do
        ignore (Farray.get ro i)
      done;
      ignore (Farray.get rw 0);
      ignore (Farray.get rw 1);
      Farray.set rw 0 2.;
      Farray.set hp 0 3.;
      Ctx.call ctx ~routine:"k" ~frame_words:4 (fun frame ->
          let t = Farray.stack ctx frame 2 in
          Farray.set t 0 1.;
          Farray.set t 1 2.;
          for _ = 1 to 3 do
            ignore (Farray.get t 0);
            ignore (Farray.get t 1)
          done)
    done;
    Ctx.set_phase ctx Mem_object.Post;
    Farray.set idle 0 9.
end

let result =
  lazy
    (Nvsc_core.Scavenger.run
       Nvsc_core.Scavenger.Config.(default |> with_iterations 4)
       (module Toy_app))

let metric name =
  let r = Lazy.force result in
  List.find
    (fun (m : OM.t) -> m.obj.Mem_object.name = name)
    r.Nvsc_core.Scavenger.metrics

let test_read_only_detection () =
  let m = metric "ro" in
  Alcotest.(check int) "reads" 16 m.OM.reads;
  Alcotest.(check int) "writes" 0 m.OM.writes;
  Alcotest.(check bool) "ratio infinite" true (m.OM.rw_ratio = infinity);
  Alcotest.(check bool) "read-only" true (OM.is_read_only m);
  Alcotest.(check bool) "pre writes kept out of main metrics" true
    m.OM.touched_outside_main

let test_rw_metrics () =
  let m = metric "rw" in
  Alcotest.(check int) "reads" 8 m.OM.reads;
  Alcotest.(check int) "writes" 4 m.OM.writes;
  Alcotest.(check (float 1e-9)) "ratio" 2. m.OM.rw_ratio;
  Alcotest.(check int) "iterations used" 4 m.OM.iterations_used;
  Alcotest.(check int) "per-iter reads" 2 m.OM.per_iter_reads.(2);
  Alcotest.(check (float 1e-9)) "per-iter ratio" 2. (OM.per_iter_ratio m ~iter:3);
  Alcotest.(check int) "size" 64 (OM.size_bytes m)

let test_untouched_detection () =
  let m = metric "idle" in
  Alcotest.(check bool) "untouched in main" true (OM.is_untouched_in_main m);
  Alcotest.(check bool) "touched outside" true m.OM.touched_outside_main;
  Alcotest.(check int) "no main iterations" 0 m.OM.iterations_used

let test_stack_metrics () =
  let m = metric "k" in
  Alcotest.(check bool) "stack kind" true
    (m.OM.obj.Mem_object.kind = Nvsc_memtrace.Layout.Stack);
  Alcotest.(check int) "stack reads" 24 m.OM.reads;
  Alcotest.(check int) "stack writes" 8 m.OM.writes;
  Alcotest.(check (float 1e-9)) "stack ratio" 3. m.OM.rw_ratio

let test_ref_shares_sum_to_one () =
  let r = Lazy.force result in
  let total =
    List.fold_left (fun acc (m : OM.t) -> acc +. m.OM.ref_share) 0.
      r.Nvsc_core.Scavenger.metrics
  in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 total

let test_total_main_refs () =
  let r = Lazy.force result in
  (* per iteration: 4 ro + 3 rw + 1 hp + 8 stack = 16; 4 iterations *)
  Alcotest.(check int) "total" 64 r.Nvsc_core.Scavenger.total_main_refs

let test_stack_summary () =
  let s = Nvsc_core.Stack_analysis.summarize (Lazy.force result) in
  (* stack: 6 reads / 2 writes per iteration *)
  Alcotest.(check (float 1e-9)) "stack ratio" 3. s.Nvsc_core.Stack_analysis.rw_ratio;
  Alcotest.(check (float 1e-9)) "reference pct" 0.5
    s.Nvsc_core.Stack_analysis.reference_pct;
  Alcotest.(check (float 1e-9)) "first = steady here" 3.
    s.Nvsc_core.Stack_analysis.first_iter_ratio

let test_object_analysis_aggregates () =
  let rep = Nvsc_core.Object_analysis.analyze (Lazy.force result) in
  (* global+heap objects: ro 64B, rw 64B, idle 128B, hp 32B = 288B *)
  Alcotest.(check int) "footprint" 288 rep.Nvsc_core.Object_analysis.footprint_bytes;
  Alcotest.(check int) "read-only bytes" 64
    rep.Nvsc_core.Object_analysis.read_only_bytes;
  Alcotest.(check int) "gt1 bytes: ro + rw" 128
    rep.Nvsc_core.Object_analysis.ratio_gt_1_bytes;
  Alcotest.(check int) "rows" 4 (List.length rep.Nvsc_core.Object_analysis.rows)

let test_usage_cdf () =
  let r = Lazy.force result in
  let cdf = Nvsc_core.Usage_variance.usage_cdf r in
  Alcotest.(check int) "points 0..4" 5 (List.length cdf);
  let p0 = List.hd cdf in
  (* idle (128B) is the only long-term object used in 0 iterations *)
  Alcotest.(check int) "idle at x=0" 128
    p0.Nvsc_core.Usage_variance.cumulative_bytes;
  let last = List.nth cdf 4 in
  Alcotest.(check int) "total long-term" 288
    last.Nvsc_core.Usage_variance.cumulative_bytes;
  Alcotest.(check int) "untouched bytes" 128
    (Nvsc_core.Usage_variance.untouched_in_main_bytes r)

let test_variance_stability () =
  let v = Nvsc_core.Usage_variance.variance (Lazy.force result) in
  (* rw and hp are written in iteration 1: both perfectly stable *)
  Alcotest.(check int) "objects" 2 v.Nvsc_core.Usage_variance.objects_considered;
  Alcotest.(check (float 1e-9)) "fully stable" 1.0
    (Nvsc_core.Usage_variance.stable_fraction v);
  Alcotest.(check (float 1e-9)) "unchanged" 1.0
    v.Nvsc_core.Usage_variance.rate_unchanged.(3)

let test_scavenger_fields () =
  let r = Lazy.force result in
  Alcotest.(check string) "name" "toy" r.Nvsc_core.Scavenger.app_name;
  Alcotest.(check int) "no unattributed" 0 r.Nvsc_core.Scavenger.unattributed;
  Alcotest.(check int) "iterations" 4 r.Nvsc_core.Scavenger.iterations;
  Alcotest.(check bool) "no trace requested" true
    (r.Nvsc_core.Scavenger.mem_trace = None);
  (* kind filters partition the metrics *)
  let s = List.length (Nvsc_core.Scavenger.stack_metrics r) in
  let g = List.length (Nvsc_core.Scavenger.global_metrics r) in
  let h = List.length (Nvsc_core.Scavenger.heap_metrics r) in
  Alcotest.(check int) "partition" (List.length r.Nvsc_core.Scavenger.metrics)
    (s + g + h)

let test_scavenger_trace () =
  let r =
    Nvsc_core.Scavenger.run
      Nvsc_core.Scavenger.Config.(
        default |> with_iterations 2 |> with_trace true)
      (module Toy_app)
  in
  match r.Nvsc_core.Scavenger.mem_trace with
  | None -> Alcotest.fail "expected trace"
  | Some t ->
    Alcotest.(check bool) "trace nonempty" true
      (Nvsc_memtrace.Trace_log.length t > 0);
    Alcotest.(check bool) "l2 miss rate sensible" true
      (r.Nvsc_core.Scavenger.l2_miss_rate >= 0.
      && r.Nvsc_core.Scavenger.l2_miss_rate <= 1.)

let suite =
  [
    Alcotest.test_case "read-only detection" `Quick test_read_only_detection;
    Alcotest.test_case "rw metrics" `Quick test_rw_metrics;
    Alcotest.test_case "untouched detection" `Quick test_untouched_detection;
    Alcotest.test_case "stack metrics" `Quick test_stack_metrics;
    Alcotest.test_case "ref shares sum to 1" `Quick test_ref_shares_sum_to_one;
    Alcotest.test_case "total main refs" `Quick test_total_main_refs;
    Alcotest.test_case "stack summary" `Quick test_stack_summary;
    Alcotest.test_case "object analysis aggregates" `Quick
      test_object_analysis_aggregates;
    Alcotest.test_case "usage cdf" `Quick test_usage_cdf;
    Alcotest.test_case "variance stability" `Quick test_variance_stability;
    Alcotest.test_case "scavenger fields" `Quick test_scavenger_fields;
    Alcotest.test_case "scavenger trace" `Quick test_scavenger_trace;
  ]
