(* NVT binary trace format: codec round-trips, record/replay fidelity,
   out-of-core streaming and damage rejection (ROADMAP item 1). *)

module Trace_codec = Nvsc_memtrace.Trace_codec
module Access = Nvsc_memtrace.Access
module Persist = Nvsc_memtrace.Persist
module Mem_object = Nvsc_memtrace.Mem_object
module Sink = Nvsc_memtrace.Sink
module Trace_log = Nvsc_memtrace.Trace_log
module Trace_file = Nvsc_memtrace.Trace_file
module Trace_run = Nvsc_core.Trace_run
module Scavenger = Nvsc_core.Scavenger

let with_tmp f =
  let path = Filename.temp_file "nvsc-nvt" ".nvt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let to_string f =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let meta ?(scale = 1.0) ?(iterations = 2) () =
  {
    Trace_codec.app = "synthetic";
    description = "synthetic event stream";
    input_description = "n/a";
    paper_footprint_mb = 1.0;
    scale;
    iterations;
    batch_capacity = Sink.default_capacity;
  }

let find_app name = Option.get (Nvsc_apps.Apps.find name)

(* --- record/replay fidelity --------------------------------------------- *)

(* the analyze-report composition every replayed analysis feeds; rendering
   both results through it is the strongest cheap byte-identity check *)
let render_report (r : Scavenger.result) =
  to_string (fun fmt ->
      Nvsc_core.Stack_analysis.pp_summary_table fmt
        [ Nvsc_core.Stack_analysis.summarize r ];
      Nvsc_core.Object_analysis.pp_report fmt
        (Nvsc_core.Object_analysis.analyze r);
      Format.fprintf fmt "untouched %s@."
        (Nvsc_util.Table.cell_pct
           (Nvsc_core.Usage_variance.untouched_in_main_fraction r));
      Nvsc_core.Usage_variance.pp_variance fmt
        (Nvsc_core.Usage_variance.variance r))

let accesses log =
  let acc = ref [] in
  Trace_log.replay log (fun a -> acc := a :: !acc);
  List.rev !acc

let test_replay_matches_live () =
  List.iter
    (fun name ->
      with_tmp @@ fun path ->
      let app = find_app name in
      let summary =
        Trace_run.record ~chunk_capacity:4096 ~scale:0.1 ~iterations:2 ~path
          app
      in
      let live =
        Scavenger.run
          Scavenger.Config.(
            default |> with_scale 0.1 |> with_iterations 2 |> with_trace true)
          app
      in
      let rep = Trace_run.replay path in
      Alcotest.(check string)
        (name ^ ": rendered report") (render_report live) (render_report rep);
      Alcotest.(check int)
        (name ^ ": footprint") live.footprint_bytes rep.footprint_bytes;
      Alcotest.(check int)
        (name ^ ": main refs") live.total_main_refs rep.total_main_refs;
      Alcotest.(check int)
        (name ^ ": unattributed") live.unattributed rep.unattributed;
      Alcotest.(check bool)
        (name ^ ": fast tallies") true
        (live.fast_tallies = rep.fast_tallies);
      Alcotest.(check bool)
        (name ^ ": miss rates") true
        (live.l1_miss_rate = rep.l1_miss_rate
        && live.l2_miss_rate = rep.l2_miss_rate);
      Alcotest.(check bool)
        (name ^ ": main-memory trace") true
        (accesses (Option.get live.mem_trace)
        = accesses (Option.get rep.mem_trace));
      Alcotest.(check int)
        (name ^ ": pipeline refs")
        live.pipeline.Nvsc_appkit.Ctx.refs summary.Trace_codec.refs;
      Alcotest.(check int)
        (name ^ ": reader refs") summary.Trace_codec.refs
        rep.pipeline.Nvsc_appkit.Ctx.refs)
    Nvsc_apps.Apps.names

let test_perf_replay_matches_live () =
  with_tmp @@ fun path ->
  let app = find_app "gtc" in
  ignore (Trace_run.record ~scale:0.1 ~iterations:1 ~path app);
  let live =
    Nvsc_cpusim.Sensitivity.run
      ~replay:(Nvsc_core.Experiment.perf_replay ~scale:0.1 app)
      ()
  in
  let rep =
    Nvsc_cpusim.Sensitivity.run ~replay:(Trace_run.perf_replay path) ()
  in
  Alcotest.(check bool) "sensitivity points identical" true (live = rep)

let test_digest_keys_on_content () =
  with_tmp @@ fun p1 ->
  with_tmp @@ fun p2 ->
  with_tmp @@ fun p3 ->
  let app = find_app "minimd" in
  let s1 = Trace_run.record ~scale:0.1 ~iterations:1 ~path:p1 app in
  let s2 = Trace_run.record ~scale:0.1 ~iterations:1 ~path:p2 app in
  let s3 = Trace_run.record ~scale:0.2 ~iterations:1 ~path:p3 app in
  Alcotest.(check string)
    "same run, same digest" s1.Trace_codec.digest s2.Trace_codec.digest;
  Alcotest.(check bool)
    "different scale, different digest" true
    (s1.Trace_codec.digest <> s3.Trace_codec.digest);
  let m, digest = Trace_run.info p1 in
  Alcotest.(check string) "info digest" s1.Trace_codec.digest digest;
  Alcotest.(check string) "info app" "minimd" m.Trace_codec.app;
  Alcotest.(check string)
    "fingerprint" "minimd|scale=0.1|iterations=1" (Trace_codec.fingerprint m)

(* --- codec property: any event stream at any chunk capacity -------------- *)

type event =
  | Ref of int * int * Access.op * int
  | Instr of int
  | Phase of Mem_object.phase
  | P of Persist.t

let gen_events =
  QCheck.Gen.(
    let gen_persist =
      oneof
        [
          map (fun obj_id -> Persist.Declare { obj_id }) (int_bound 40);
          ( let* obj_id = int_bound 40 in
            let* off = int_bound 4096 in
            let* len = int_range 1 4096 in
            return (Persist.Flush { obj_id; off; len }) );
          return Persist.Fence;
          ( let* checkpoint = bool in
            let* label = oneofl [ "ckpt"; "epoch \xe2\x9c\x93"; "" ] in
            let* b = bool in
            return
              (if b then Persist.Epoch_begin { label; checkpoint }
               else Persist.Epoch_commit { label; checkpoint }) );
        ]
    in
    let gen_event =
      frequency
        [
          ( 8,
            let* addr = int_bound 0xFFFF_FFFF in
            let* size = int_range 1 4096 in
            let* w = bool in
            let* obj_id = int_range (-1) 40 in
            return
              (Ref (addr, size, (if w then Access.Write else Access.Read),
                    obj_id)) );
          (1, map (fun n -> Instr (n + 1)) (int_bound 10_000));
          ( 1,
            map
              (fun p -> Phase p)
              (oneofl
                 [ Mem_object.Pre; Mem_object.Post; Mem_object.Main 1;
                   Mem_object.Main 7 ]) );
          (1, map (fun p -> P p) gen_persist);
        ]
    in
    list_size (int_bound 400) gen_event)

let roundtrip_ok ~chunk_capacity ~mode events =
  with_tmp @@ fun path ->
  let w = Trace_codec.Writer.create ~chunk_capacity ~path ~meta:(meta ()) () in
  List.iter
    (function
      | Ref (addr, size, op, obj_id) ->
        Trace_codec.Writer.add_ref w ~addr ~size ~op ~obj_id
      | Instr n -> Trace_codec.Writer.add_instr w n
      | Phase p -> Trace_codec.Writer.add_phase w p
      | P p -> Trace_codec.Writer.add_persist w p)
    events;
  let s = Trace_codec.Writer.finish w () in
  let refs =
    List.length (List.filter (function Ref _ -> true | _ -> false) events)
  in
  let writes =
    List.length
      (List.filter (function Ref (_, _, Access.Write, _) -> true | _ -> false)
         events)
  in
  let r = Trace_codec.Reader.open_ ~mode path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  let got = ref [] in
  Trace_codec.stream r
    ~on_phase:(fun p -> got := Phase p :: !got)
    ~on_instr:(fun n -> got := Instr n :: !got)
    ~on_persist:(fun p -> got := P p :: !got)
    ~on_refs:(fun batch ~obj_ids ~first ~n ->
      for i = first to first + n - 1 do
        got :=
          Ref
            ( Sink.Batch.addr batch i,
              Sink.Batch.size batch i,
              Sink.Batch.op batch i,
              obj_ids.(i) )
          :: !got
      done)
    ();
  s.Trace_codec.refs = refs
  && s.Trace_codec.writes = writes
  && s.Trace_codec.reads = refs - writes
  && Trace_codec.Reader.refs r = refs
  && List.rev !got = events

let codec_roundtrip =
  QCheck.Test.make
    ~name:"codec round-trips any event stream at chunk capacities 1/7/65536"
    ~count:30 (QCheck.make gen_events) (fun events ->
      List.for_all
        (fun chunk_capacity ->
          (* both chunk I/O paths must decode every stream identically *)
          List.for_all
            (fun mode -> roundtrip_ok ~chunk_capacity ~mode events)
            [ Trace_codec.Buffered; Trace_codec.Mmap ])
        [ 1; 7; 65536 ])

let test_empty_trace () =
  with_tmp @@ fun path ->
  let w = Trace_codec.Writer.create ~path ~meta:(meta ()) () in
  let s = Trace_codec.Writer.finish w () in
  Alcotest.(check int) "refs" 0 s.Trace_codec.refs;
  Alcotest.(check int) "chunks" 0 s.Trace_codec.chunks;
  let r = Trace_codec.Reader.open_ path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  let fired = ref false in
  Trace_codec.stream r ~on_refs:(fun _ ~obj_ids:_ ~first:_ ~n:_ ->
      fired := true) ();
  Alcotest.(check bool) "no callbacks" false !fired

(* --- out-of-core streaming ----------------------------------------------- *)

let test_streaming_constant_memory () =
  with_tmp @@ fun path ->
  let chunk_capacity = 1024 in
  let total = 400_000 in
  let w = Trace_codec.Writer.create ~chunk_capacity ~path ~meta:(meta ()) () in
  let rng = ref 123456789 in
  for i = 0 to total - 1 do
    rng := ((!rng * 1103515245) + 12345) land 0x3FFF_FFFF;
    Trace_codec.Writer.add_ref w ~addr:!rng ~size:8
      ~op:(if i land 3 = 0 then Access.Write else Access.Read)
      ~obj_id:(i mod 64)
  done;
  let s = Trace_codec.Writer.finish w () in
  Alcotest.(check int) "chunks" 391 s.Trace_codec.chunks;
  let r = Trace_codec.Reader.open_ path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  Gc.full_major ();
  let baseline = (Gc.stat ()).Gc.live_words in
  let max_live = ref 0 in
  let seen = ref 0 in
  let slices = ref 0 in
  Trace_codec.stream r
    ~on_refs:(fun _batch ~obj_ids:_ ~first:_ ~n ->
      seen := !seen + n;
      incr slices;
      if !slices mod 64 = 0 then begin
        Gc.full_major ();
        max_live := max !max_live (Gc.stat ()).Gc.live_words
      end)
    ();
  Alcotest.(check int) "all refs delivered" total !seen;
  (* peak live heap must be bounded by the chunk (a few thousand words),
     never the 400k-reference trace (>= 1.2M words if materialized) *)
  Alcotest.(check bool)
    (Printf.sprintf "live heap bounded (baseline %d, peak %d)" baseline
       !max_live)
    true
    (!max_live - baseline < 200_000)

(* --- damage rejection ----------------------------------------------------- *)

let u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let u64le s off = u32le s off lor (u32le s (off + 4) lsl 32)

let flip s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  Bytes.to_string b

let expect_error ~substr f =
  match f () with
  | _ -> Alcotest.fail ("expected Trace_codec.Error with " ^ substr)
  | exception Trace_codec.Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%S in %S" substr msg)
      true (contains msg substr)

let test_rejects_damage () =
  with_tmp @@ fun path ->
  let w =
    Trace_codec.Writer.create ~chunk_capacity:8 ~path ~meta:(meta ()) ()
  in
  for i = 0 to 99 do
    Trace_codec.Writer.add_ref w ~addr:(i * 64) ~size:8
      ~op:(if i land 1 = 0 then Access.Read else Access.Write)
      ~obj_id:(i mod 3)
  done;
  ignore (Trace_codec.Writer.finish w ());
  let good = read_file path in
  with_tmp @@ fun bad ->
  (* foreign magic *)
  write_file bad (flip good 0);
  expect_error ~substr:"bad magic" (fun () -> Trace_codec.Reader.open_ bad);
  (* future version *)
  write_file bad (flip good 8);
  expect_error ~substr:"unsupported NVT version" (fun () ->
      Trace_codec.Reader.open_ bad);
  (* truncation loses the trailer *)
  write_file bad (String.sub good 0 (String.length good - 10));
  expect_error ~substr:"truncated" (fun () -> Trace_codec.Reader.open_ bad);
  (* a flipped trailer byte fails the trailer digest *)
  let trailer_off = u64le good (String.length good - 16) in
  write_file bad (flip good (trailer_off + 1 + 4 + 16 + 1));
  expect_error ~substr:"corrupt trailer" (fun () ->
      Trace_codec.Reader.open_ bad);
  (* a flipped chunk byte opens fine (the trailer is intact) but fails the
     per-chunk digest during streaming *)
  let hlen = u32le good 10 in
  let first_payload = 14 + hlen + 1 + 4 + 16 in
  write_file bad (flip good (first_payload + 1));
  let r = Trace_codec.Reader.open_ bad in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  expect_error ~substr:"corrupt chunk" (fun () ->
      Trace_codec.stream r
        ~on_refs:(fun _ ~obj_ids:_ ~first:_ ~n:_ -> ())
        ());
  (* every error names the file *)
  expect_error ~substr:bad (fun () ->
      Trace_codec.stream r
        ~on_refs:(fun _ ~obj_ids:_ ~first:_ ~n:_ -> ())
        ())

(* --- mmap reader ---------------------------------------------------------- *)

let stream_events ~mode path =
  let r = Trace_codec.Reader.open_ ~mode path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  let got = ref [] in
  Trace_codec.stream r
    ~on_phase:(fun p -> got := Phase p :: !got)
    ~on_instr:(fun n -> got := Instr n :: !got)
    ~on_persist:(fun p -> got := P p :: !got)
    ~on_refs:(fun batch ~obj_ids ~first ~n ->
      for i = first to first + n - 1 do
        got :=
          Ref
            ( Sink.Batch.addr batch i,
              Sink.Batch.size batch i,
              Sink.Batch.op batch i,
              obj_ids.(i) )
          :: !got
      done)
    ();
  (Trace_codec.Reader.mmapped r, List.rev !got)

let test_mmap_reader_modes () =
  with_tmp @@ fun path ->
  let w =
    Trace_codec.Writer.create ~chunk_capacity:8 ~path ~meta:(meta ()) ()
  in
  Trace_codec.Writer.add_phase w (Mem_object.Main 1);
  for i = 0 to 99 do
    if i mod 17 = 0 then Trace_codec.Writer.add_instr w (i + 1);
    if i = 40 then
      Trace_codec.Writer.add_persist w
        (Persist.Epoch_begin { label = "mm"; checkpoint = false });
    Trace_codec.Writer.add_ref w ~addr:(i * 64) ~size:8
      ~op:(if i land 1 = 0 then Access.Read else Access.Write)
      ~obj_id:(i mod 3)
  done;
  ignore (Trace_codec.Writer.finish w ());
  let mm_b, ev_b = stream_events ~mode:Trace_codec.Buffered path in
  let mm_m, ev_m = stream_events ~mode:Trace_codec.Mmap path in
  let mm_a, ev_a = stream_events ~mode:Trace_codec.Auto path in
  Alcotest.(check bool) "buffered is not mapped" false mm_b;
  Alcotest.(check bool) "mmap is mapped" true mm_m;
  Alcotest.(check bool) "auto maps on this platform" true mm_a;
  Alcotest.(check int) "events decoded" 108 (List.length ev_b);
  Alcotest.(check bool) "mmap decodes identically" true (ev_m = ev_b);
  Alcotest.(check bool) "auto decodes identically" true (ev_a = ev_b);
  (* a flipped chunk byte fails the per-chunk digest on both paths *)
  let good = read_file path in
  with_tmp @@ fun bad ->
  let hlen = u32le good 10 in
  write_file bad (flip good (14 + hlen + 1 + 4 + 16 + 3));
  List.iter
    (fun mode ->
      expect_error ~substr:"corrupt chunk" (fun () ->
          ignore (stream_events ~mode bad)))
    [ Trace_codec.Buffered; Trace_codec.Mmap ]

(* --- version compatibility ------------------------------------------------ *)

let test_v1_writer_reader_compat () =
  with_tmp @@ fun path ->
  let w =
    Trace_codec.Writer.create ~version:1 ~chunk_capacity:8 ~path
      ~meta:(meta ()) ()
  in
  for i = 0 to 31 do
    Trace_codec.Writer.add_ref w ~addr:(i * 64) ~size:8
      ~op:(if i land 1 = 0 then Access.Read else Access.Write)
      ~obj_id:(i mod 3)
  done;
  (* a v1 writer has no wire representation for persist events: refusing
     is the version policy, not silent omission *)
  expect_error ~substr:"persist events need NVT version >= 2" (fun () ->
      Trace_codec.Writer.add_persist w Persist.Fence);
  let s = Trace_codec.Writer.finish w () in
  Alcotest.(check int) "refs recorded" 32 s.Trace_codec.refs;
  let r = Trace_codec.Reader.open_ path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  Alcotest.(check int) "declared version" 1 (Trace_codec.Reader.version r);
  let seen = ref 0 in
  let persist_fired = ref false in
  Trace_codec.stream r
    ~on_persist:(fun _ -> persist_fired := true)
    ~on_refs:(fun _ ~obj_ids:_ ~first:_ ~n -> seen := !seen + n)
    ();
  Alcotest.(check int) "v1 trace still streams" 32 !seen;
  Alcotest.(check bool) "no persist events in a v1 trace" false !persist_fired

let test_persist_token_needs_v2 () =
  with_tmp @@ fun path ->
  let w =
    Trace_codec.Writer.create ~chunk_capacity:8 ~path ~meta:(meta ()) ()
  in
  Trace_codec.Writer.add_ref w ~addr:0 ~size:8 ~op:Access.Read ~obj_id:0;
  Trace_codec.Writer.add_persist w Persist.Fence;
  ignore (Trace_codec.Writer.finish w ());
  let good = read_file path in
  with_tmp @@ fun bad ->
  (* rewrite the declared version to 1 (the u16 after the magic is not
     digest-covered): the persist token inside is now illegal *)
  let b = Bytes.of_string good in
  Bytes.set b 8 '\001';
  write_file bad (Bytes.to_string b);
  let r = Trace_codec.Reader.open_ bad in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  Alcotest.(check int) "downgraded header" 1 (Trace_codec.Reader.version r);
  expect_error ~substr:"persist token in a v1 trace" (fun () ->
      Trace_codec.stream r
        ~on_persist:(fun _ -> ())
        ~on_refs:(fun _ ~obj_ids:_ ~first:_ ~n:_ -> ())
        ())

(* --- sweep-from-trace ----------------------------------------------------- *)

let fresh_dir () =
  let base = Filename.temp_file "nvsc-nvt-cache" "" in
  Sys.remove base;
  base ^ ".d"

let test_sweep_from_trace_cache () =
  with_tmp @@ fun path ->
  let app = find_app "gtc" in
  ignore (Trace_run.record ~scale:0.1 ~iterations:2 ~path app);
  let matrix =
    match
      Nvsc_sweep.Matrix.make ~apps:[ "gtc" ]
        ~kinds:[ Nvsc_sweep.Cell.Objects; Power; Place ]
        ~scale:0.1 ~iterations:2 ()
    with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let dir = fresh_dir () in
  let render (outcomes, _) =
    to_string (fun fmt -> Nvsc_sweep.Engine.pp_outcomes fmt outcomes)
  in
  let cold =
    Nvsc_sweep.Engine.run ~jobs:1
      ~cache:(Nvsc_sweep.Cache.create ~dir ())
      ~trace:path matrix
  in
  let warm =
    Nvsc_sweep.Engine.run ~jobs:1
      ~cache:(Nvsc_sweep.Cache.create ~dir ())
      ~trace:path matrix
  in
  Alcotest.(check int) "cold misses" 3 (snd cold).Nvsc_sweep.Engine.misses;
  Alcotest.(check int) "warm misses" 0 (snd warm).Nvsc_sweep.Engine.misses;
  Alcotest.(check int) "warm hits" 3 (snd warm).Nvsc_sweep.Engine.hits;
  Alcotest.(check string) "warm report identical" (render cold) (render warm)

let test_pinned_digest_must_match () =
  with_tmp @@ fun path ->
  let app = find_app "minimd" in
  ignore (Trace_run.record ~scale:0.1 ~iterations:1 ~path app);
  let spec =
    {
      Nvsc_sweep.Cell.app = "minimd";
      kind = Nvsc_sweep.Cell.Objects;
      scale = 0.1;
      iterations = 1;
      tech = None;
      trace_digest = Some (String.make 32 'f');
    }
  in
  Alcotest.(check bool)
    "foreign digest rejected" true
    (match Nvsc_sweep.Cell.execute ~trace:path spec with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "pinned digest without trace rejected" true
    (match Nvsc_sweep.Cell.execute spec with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- trace_file: size threading and error context ------------------------ *)

let test_trace_file_size_and_errors () =
  (match Trace_file.parse_record ~size:32 "0x40 P_MEM_RD 0" with
  | Some a -> Alcotest.(check int) "size threaded" 32 a.Access.size
  | None -> Alcotest.fail "expected record");
  (match Trace_file.parse_record "0x40 P_MEM_WR 0" with
  | Some a -> Alcotest.(check int) "default size" 64 a.Access.size
  | None -> Alcotest.fail "expected record");
  let path = Filename.temp_file "nvsc-bad-trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "0x40 P_MEM_RD 0\nbogus line here\n";
      (match Trace_file.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure msg ->
        Alcotest.(check bool)
          ("path in " ^ msg) true (contains msg path);
        Alcotest.(check bool)
          ("line number in " ^ msg) true (contains msg "(line 2)"));
      write_file path "0x40 P_MEM_RD 0\n";
      let log = Trace_file.load ~size:16 path in
      Alcotest.(check int)
        "load threads size" 16 (Trace_log.get log 0).Access.size)

(* --- golden fixture: the on-disk byte format is pinned ------------------- *)

(* One committed v2 trace (test/golden/mini.nvt, built by
   test/golden/gen_mini.ml) covering every token kind.  Decoding it and
   re-encoding the decoded stream byte-for-byte proves the codec is
   host-independent: all fixed-width fields are explicit little-endian,
   so the Bigarray-backed batch storage (native-endian in memory) never
   leaks into the format, on any endianness or word size. *)

type golden_event =
  | G_ref of int * int * Access.op * int  (* addr, size, op, obj_id *)
  | G_phase of Mem_object.phase
  | G_instr of int
  | G_persist of Persist.t

let golden_digest = "9455ba2202cb87db6fc9013078e23b83"

let test_golden_fixture () =
  let path =
    (* set by the dune action; the fallback serves [dune exec] from the
       repo root *)
    Option.value
      (Sys.getenv_opt "GOLDEN_NVT")
      ~default:"test/golden/mini.nvt"
  in
  let r = Trace_codec.Reader.open_ path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r)
  @@ fun () ->
  Alcotest.(check int) "version" 2 (Trace_codec.Reader.version r);
  Alcotest.(check int) "refs" 7 (Trace_codec.Reader.refs r);
  Alcotest.(check int) "reads" 3 (Trace_codec.Reader.reads r);
  Alcotest.(check int) "writes" 4 (Trace_codec.Reader.writes r);
  Alcotest.(check int) "chunks" 2 (Trace_codec.Reader.chunks r);
  Alcotest.(check string)
    "pinned digest" golden_digest (Trace_codec.Reader.digest r);
  let m = Trace_codec.Reader.meta r in
  Alcotest.(check string) "app" "golden-mini" m.Trace_codec.app;
  Alcotest.(check int) "chunk capacity" 4 (Trace_codec.Reader.chunk_capacity r);
  (* decode every token in file order *)
  let events = ref [] in
  let push e = events := e :: !events in
  Trace_codec.stream r
    ~on_phase:(fun p -> push (G_phase p))
    ~on_instr:(fun n -> push (G_instr n))
    ~on_persist:(fun p -> push (G_persist p))
    ~on_refs:(fun batch ~obj_ids ~first ~n ->
      for i = first to first + n - 1 do
        push
          (G_ref
             ( Sink.Batch.addr batch i,
               Sink.Batch.size batch i,
               Sink.Batch.op batch i,
               obj_ids.(i) ))
      done)
    ();
  let events = List.rev !events in
  Alcotest.(check int) "event count" 17 (List.length events);
  (match List.nth events 1 with
  | G_ref (4096, 8, Access.Write, 0) -> ()
  | _ -> Alcotest.fail "first ref decoded wrong");
  (match List.nth events 16 with
  | G_ref (4096, 8, Access.Read, -1) -> ()
  | _ -> Alcotest.fail "unattributed trailing ref decoded wrong");
  (match List.nth events 6 with
  | G_persist (Persist.Epoch_begin { label = "step"; checkpoint = true }) -> ()
  | _ -> Alcotest.fail "epoch-begin token decoded wrong");
  (* re-encode the decoded stream: bytes must match the fixture exactly *)
  let objs = Trace_codec.Reader.objects r in
  let resolve id =
    List.find_opt (fun (o : Mem_object.t) -> o.Mem_object.id = id) objs
  in
  with_tmp @@ fun out ->
  let w =
    Trace_codec.Writer.create
      ~chunk_capacity:(Trace_codec.Reader.chunk_capacity r)
      ~resolve ~path:out ~meta:m ()
  in
  List.iter
    (function
      | G_ref (addr, size, op, obj_id) ->
        Trace_codec.Writer.add_ref w ~addr ~size ~op ~obj_id
      | G_phase p -> Trace_codec.Writer.add_phase w p
      | G_instr n -> Trace_codec.Writer.add_instr w n
      | G_persist p -> Trace_codec.Writer.add_persist w p)
    events;
  let s =
    Trace_codec.Writer.finish w ~objects:objs
      ~stack_objects:(Trace_codec.Reader.stack_objects r)
      ()
  in
  Alcotest.(check string) "re-encoded digest" golden_digest s.Trace_codec.digest;
  Alcotest.(check bool)
    "re-encoded bytes identical" true
    (read_file out = read_file path)

let suite =
  [
    Alcotest.test_case "record/replay identical for all apps" `Quick
      test_replay_matches_live;
    Alcotest.test_case "perf replay matches live sensitivity" `Quick
      test_perf_replay_matches_live;
    Alcotest.test_case "digest keys on trace content" `Quick
      test_digest_keys_on_content;
    Alcotest.test_case "empty trace round-trips" `Quick test_empty_trace;
    Alcotest.test_case "streaming is constant-memory" `Quick
      test_streaming_constant_memory;
    Alcotest.test_case "damaged files are rejected by name" `Quick
      test_rejects_damage;
    Alcotest.test_case "mmap and buffered readers decode identically" `Quick
      test_mmap_reader_modes;
    Alcotest.test_case "v1 traces write and read back" `Quick
      test_v1_writer_reader_compat;
    Alcotest.test_case "persist token in a v1 trace is corrupt" `Quick
      test_persist_token_needs_v2;
    Alcotest.test_case "sweep from trace: warm cache has zero misses" `Quick
      test_sweep_from_trace_cache;
    Alcotest.test_case "sweep from trace: pinned digest must match" `Quick
      test_pinned_digest_must_match;
    Alcotest.test_case "trace_file threads size and names the file" `Quick
      test_trace_file_size_and_errors;
    Alcotest.test_case "golden fixture decodes and re-encodes byte-identically"
      `Quick test_golden_fixture;
    QCheck_alcotest.to_alcotest codec_roundtrip;
  ]
