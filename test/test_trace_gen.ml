module TG = Nvsc_memtrace.Trace_gen
module Sink = Nvsc_memtrace.Sink
module Access = Nvsc_memtrace.Access

let test_sequential () =
  let t = TG.to_list (TG.sequential ~start:2 ~n:4 ()) in
  Alcotest.(check (list int)) "addresses"
    [ 128; 192; 256; 320 ]
    (List.map (fun (a : Access.t) -> a.addr) t);
  Alcotest.(check bool) "all reads" true (List.for_all Access.is_read t)

let test_strided () =
  let t = TG.to_list (TG.strided ~stride_lines:3 ~n:3 ()) in
  Alcotest.(check (list int)) "addresses" [ 0; 192; 384 ]
    (List.map (fun (a : Access.t) -> a.addr) t);
  Alcotest.(check bool) "bad stride rejected" true
    (try
       ignore (TG.strided ~stride_lines:0 ~n:1 ());
       false
     with Invalid_argument _ -> true)

let test_hot_cold_shares () =
  let t =
    TG.to_list
      (TG.hot_cold ~seed:3 ~hot_fraction:0.8 ~hot_lines:16 ~cold_lines:1024
         ~write_fraction:0.25 ~n:20_000 ())
  in
  let hot =
    List.length (List.filter (fun (a : Access.t) -> a.addr / 64 < 16) t)
  in
  let writes = List.length (List.filter Access.is_write t) in
  Alcotest.(check bool) "hot share near 0.8" true
    (Float.abs ((float_of_int hot /. 20_000.) -. 0.8) < 0.02);
  Alcotest.(check bool) "write share near 0.25" true
    (Float.abs ((float_of_int writes /. 20_000.) -. 0.25) < 0.02);
  Alcotest.(check bool) "cold lines in range" true
    (List.for_all (fun (a : Access.t) -> a.addr / 64 < 16 + 1024) t)

let test_hot_cold_deterministic () =
  let gen () =
    TG.to_list
      (TG.hot_cold ~seed:9 ~hot_fraction:0.5 ~hot_lines:8 ~cold_lines:8
         ~write_fraction:0.5 ~n:100 ())
  in
  Alcotest.(check bool) "same seed, same trace" true (gen () = gen ())

let test_streaming_matches_list () =
  (* the streaming path into a sink and the list shim must agree exactly,
     whatever the sink capacity *)
  let gen () =
    TG.zipf ~seed:12 ~lines:512 ~write_fraction:0.4 ~n:3_000 ()
  in
  let expected = TG.to_list (gen ()) in
  List.iter
    (fun capacity ->
      let got = ref [] in
      let sink = Sink.of_fn ~capacity (fun a -> got := a :: !got) in
      let pushed = TG.into (gen ()) sink in
      Sink.flush sink;
      Alcotest.(check int)
        (Printf.sprintf "pushed (capacity %d)" capacity)
        3_000 pushed;
      Alcotest.(check bool)
        (Printf.sprintf "identical stream (capacity %d)" capacity)
        true
        (List.rev !got = expected))
    [ 1; 7; 65536 ]

let test_zipf_skew () =
  let t = TG.to_list (TG.zipf ~seed:5 ~lines:1000 ~write_fraction:0. ~n:50_000 ()) in
  let count line =
    List.length (List.filter (fun (a : Access.t) -> a.addr / 64 = line) t)
  in
  (* Zipf(1): line 0 should get roughly 1/H(1000) ~ 13% of accesses, and
     far more than line 500 *)
  Alcotest.(check bool) "head is hot" true (count 0 > 5_000);
  Alcotest.(check bool) "head >> tail" true (count 0 > 20 * (count 500 + 1));
  Alcotest.(check bool) "lines in range" true
    (List.for_all (fun (a : Access.t) -> a.addr / 64 < 1000) t)

let test_interleave () =
  let r addr = Access.read ~addr ~size:64 in
  let merged =
    TG.to_list
      (TG.interleave
         [
           TG.of_list [ r 1; r 2 ];
           TG.of_list [ r 10 ];
           TG.of_list [ r 100; r 200; r 300 ];
         ])
  in
  Alcotest.(check (list int)) "round robin with drain"
    [ 1; 10; 100; 2; 200; 300 ]
    (List.map (fun (a : Access.t) -> a.addr) merged)

let test_interleave_unequal_through_sink () =
  (* unequal stream lengths drained through a small-capacity sink: every
     reference arrives, in round-robin-with-drain order *)
  let addrs = ref [] in
  let sink = Sink.of_fn ~capacity:4 (fun a -> addrs := a.Access.addr :: !addrs) in
  let gen =
    TG.interleave
      [
        TG.sequential ~start:0 ~n:5 ();
        TG.sequential ~start:100 ~n:2 ();
        TG.sequential ~start:200 ~n:1 ();
      ]
  in
  let pushed = TG.into gen sink in
  Sink.flush sink;
  Alcotest.(check int) "all pushed" 8 pushed;
  let line a = a / 64 in
  Alcotest.(check (list int)) "drain order"
    [ 0; 100; 200; 1; 101; 2; 3; 4 ]
    (List.rev_map line !addrs)

let test_feeds_simulators () =
  (* generated traces drive the memory system end to end *)
  let t =
    TG.to_list (TG.zipf ~seed:1 ~lines:4096 ~write_fraction:0.3 ~n:5_000 ())
  in
  let s =
    Nvsc_dramsim.Memory_system.run_trace
      ~tech:(Nvsc_nvram.Technology.get Nvsc_nvram.Technology.DDR3) t
  in
  Alcotest.(check int) "all simulated" 5000 s.Nvsc_dramsim.Controller.accesses;
  Alcotest.(check bool) "hot head gives row hits" true
    (s.Nvsc_dramsim.Controller.row_hit_rate > 0.5)

let suite =
  [
    Alcotest.test_case "sequential" `Quick test_sequential;
    Alcotest.test_case "strided" `Quick test_strided;
    Alcotest.test_case "hot/cold shares" `Quick test_hot_cold_shares;
    Alcotest.test_case "determinism" `Quick test_hot_cold_deterministic;
    Alcotest.test_case "streaming matches list" `Quick
      test_streaming_matches_list;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "interleave" `Quick test_interleave;
    Alcotest.test_case "interleave unequal through sink" `Quick
      test_interleave_unequal_through_sink;
    Alcotest.test_case "feeds simulators" `Quick test_feeds_simulators;
  ]
