(* The beyond-the-paper workloads: MiniFE and MiniMD exist to check that
   the paper's data-structure classes generalise. *)

module OM = Nvsc_core.Object_metrics
module Mem_object = Nvsc_memtrace.Mem_object

let test_registry_extended () =
  Alcotest.(check int) "paper set size" 4 (List.length Nvsc_apps.Apps.all);
  Alcotest.(check int) "extended size" 6 (List.length Nvsc_apps.Apps.extended);
  Alcotest.(check bool) "find minife" true (Nvsc_apps.Apps.find "minife" <> None);
  Alcotest.(check bool) "find minimd" true (Nvsc_apps.Apps.find "MiniMD" <> None);
  Alcotest.(check bool) "paper names exclude extras" true
    (not (List.mem "minife" Nvsc_apps.Apps.names));
  Alcotest.(check bool) "extended names include extras" true
    (List.mem "minife" Nvsc_apps.Apps.extended_names)

let run name =
  Nvsc_core.Scavenger.run
    Nvsc_core.Scavenger.Config.(
      default |> with_scale 0.5 |> with_iterations 6)
    (Option.get (Nvsc_apps.Apps.find name))

let metric result name =
  List.find
    (fun (m : OM.t) -> m.obj.Mem_object.name = name)
    result.Nvsc_core.Scavenger.metrics

let test_minife_readonly_dominates () =
  let r = run "minife" in
  let rep = Nvsc_core.Object_analysis.analyze r in
  (* the CSR arrays put MiniFE far beyond the paper's 7-15% read-only *)
  Alcotest.(check bool) "read-only fraction > 40%" true
    (rep.Nvsc_core.Object_analysis.read_only_fraction > 0.4);
  Alcotest.(check bool) "NVRAM-suitable > 40%" true
    (rep.Nvsc_core.Object_analysis.nvram_friendly_fraction > 0.4);
  List.iter
    (fun name ->
      let m = metric r name in
      Alcotest.(check bool) (name ^ " read-only") true (OM.is_read_only m))
    [ "values"; "col_idx"; "row_ptr" ];
  Alcotest.(check int) "clean run" 0 r.Nvsc_core.Scavenger.unattributed

let test_minimd_neighbor_list_bursts () =
  let r = run "minimd" in
  let nl = metric r "neighbor_list" in
  (* rebuilds happen in iterations 1 and 6; every other iteration the list
     is read-only — the temporally NVRAM-friendly pattern of §VII-C *)
  List.iter
    (fun iter ->
      Alcotest.(check bool)
        (Printf.sprintf "iter %d writes" iter)
        true
        (nl.OM.per_iter_writes.(iter - 1) > 0))
    [ 1; 6 ];
  List.iter
    (fun iter ->
      Alcotest.(check int)
        (Printf.sprintf "iter %d read-only" iter)
        0
        nl.OM.per_iter_writes.(iter - 1);
      Alcotest.(check bool)
        (Printf.sprintf "iter %d ratio infinite" iter)
        true
        (OM.per_iter_ratio nl ~iter = infinity))
    [ 2; 3; 4; 5 ]

let test_minimd_short_term_heap () =
  let r = run "minimd" in
  let bins = metric r "cell_bins" in
  (* allocated inside a main-loop iteration: a short-term object, excluded
     from the figure-7 population *)
  Alcotest.(check bool) "allocated mid-loop" true
    (match bins.OM.obj.Mem_object.alloc_phase with
    | Mem_object.Main _ -> true
    | _ -> false);
  let cdf_total =
    (List.nth (Nvsc_core.Usage_variance.usage_cdf r) r.Nvsc_core.Scavenger.iterations)
      .Nvsc_core.Usage_variance.cumulative_bytes
  in
  Alcotest.(check bool) "excluded from long-term footprint" true
    (cdf_total < r.Nvsc_core.Scavenger.footprint_bytes)

let test_dynamic_policy_exploits_minimd () =
  (* the neighbour list is promoted to DRAM during its rebuild epochs and
     demoted back once the write burst ends; with the run ending on
     read-only epochs, the dynamic policy leaves it in NVRAM *)
  let p =
    Nvsc_core.Extensions.placement_summary ~scale:0.5 ~iterations:8
      (Option.get (Nvsc_apps.Apps.find "minimd"))
  in
  Alcotest.(check bool) "dynamic uses NVRAM" true
    (p.Nvsc_core.Extensions.dynamic_nvram_fraction > 0.2);
  Alcotest.(check bool) "migration churn from the bursts" true
    (p.Nvsc_core.Extensions.migrations >= 2)

let test_minife_static_plan_wins () =
  let p =
    Nvsc_core.Extensions.placement_summary ~scale:0.5 ~iterations:6
      (Option.get (Nvsc_apps.Apps.find "minife"))
  in
  (* the CSR arrays make even a static plan place a big NVRAM share *)
  Alcotest.(check bool) "static NVRAM share > 40%" true
    (p.Nvsc_core.Extensions.static_nvram_fraction > 0.4);
  Alcotest.(check bool) "negligible slowdown bound (STTRAM reads)" true
    (p.Nvsc_core.Extensions.static_slowdown_bound < 1.05)

let test_determinism_extras () =
  List.iter
    (fun name ->
      let a = run name and b = run name in
      Alcotest.(check int) (name ^ " deterministic")
        a.Nvsc_core.Scavenger.total_main_refs
        b.Nvsc_core.Scavenger.total_main_refs)
    [ "minife"; "minimd" ]

let suite =
  [
    Alcotest.test_case "extended registry" `Quick test_registry_extended;
    Alcotest.test_case "minife: read-only dominates" `Slow
      test_minife_readonly_dominates;
    Alcotest.test_case "minimd: neighbor-list bursts" `Slow
      test_minimd_neighbor_list_bursts;
    Alcotest.test_case "minimd: short-term heap" `Slow
      test_minimd_short_term_heap;
    Alcotest.test_case "minimd: dynamic policy exploits it" `Slow
      test_dynamic_policy_exploits_minimd;
    Alcotest.test_case "minife: static plan wins" `Slow
      test_minife_static_plan_wins;
    Alcotest.test_case "extras deterministic" `Slow test_determinism_extras;
  ]
