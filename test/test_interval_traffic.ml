module IM = Nvsc_util.Interval_map
module TA = Nvsc_core.Traffic_attribution

(* --- interval map -------------------------------------------------------- *)

let test_find () =
  let m = IM.build [ (10, 20, "a"); (30, 40, "b") ] in
  Alcotest.(check (option string)) "inside a" (Some "a") (IM.find m 15);
  Alcotest.(check (option string)) "start inclusive" (Some "a") (IM.find m 10);
  Alcotest.(check (option string)) "stop exclusive" None (IM.find m 20);
  Alcotest.(check (option string)) "gap" None (IM.find m 25);
  Alcotest.(check (option string)) "before all" None (IM.find m 5);
  Alcotest.(check (option string)) "after all" None (IM.find m 100);
  Alcotest.(check (option string)) "in b" (Some "b") (IM.find m 39);
  Alcotest.(check int) "size" 2 (IM.size m)

let test_empty () =
  let m = IM.build [] in
  Alcotest.(check (option int)) "empty" None (IM.find m 0)

let test_validation () =
  (* the error names the offending ranges *)
  Alcotest.check_raises "overlap"
    (Invalid_argument
       "Interval_map.build: overlapping ranges [0,10) and [5,15)") (fun () ->
      ignore (IM.build [ (0, 10, ()); (5, 15, ()) ]));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Interval_map.build: empty range [5,5)") (fun () ->
      ignore (IM.build [ (5, 5, ()) ]))

let test_validation_edge_cases () =
  (* adjacent ranges do not overlap: [0,10) then [10,20) *)
  let m = IM.build [ (10, 20, "b"); (0, 10, "a") ] in
  Alcotest.(check (option string)) "left of seam" (Some "a") (IM.find m 9);
  Alcotest.(check (option string)) "right of seam" (Some "b") (IM.find m 10);
  (* duplicate start: reported as an overlap of the two, in sorted order *)
  Alcotest.check_raises "duplicate start"
    (Invalid_argument
       "Interval_map.build: overlapping ranges [3,7) and [3,9)") (fun () ->
      ignore (IM.build [ (3, 7, ()); (3, 9, ()) ]));
  (* fully nested range *)
  Alcotest.check_raises "fully nested"
    (Invalid_argument
       "Interval_map.build: overlapping ranges [0,100) and [20,30)")
    (fun () -> ignore (IM.build [ (0, 100, ()); (20, 30, ()) ]))

let find_equals_linear_prop =
  QCheck.Test.make ~name:"interval find = linear scan" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 20) (pair (int_range 0 500) (int_range 1 30)))
        (list_of_size Gen.(int_range 1 50) (int_range 0 700)))
    (fun (raw, probes) ->
      (* build disjoint ranges by laying them out end to end with gaps *)
      let _, ranges =
        List.fold_left
          (fun (cursor, acc) (gap, len) ->
            let start = cursor + gap in
            (start + len, (start, start + len, start) :: acc))
          (0, []) raw
      in
      let m = IM.build ranges in
      List.for_all
        (fun x ->
          let linear =
            List.find_opt (fun (s, e, _) -> x >= s && x < e) ranges
            |> Option.map (fun (_, _, v) -> v)
          in
          IM.find m x = linear)
        probes)

(* --- traffic attribution -------------------------------------------------- *)

let report =
  lazy
    (TA.analyze
       (Nvsc_core.Scavenger.run
          Nvsc_core.Scavenger.Config.(
            default |> with_scale 0.25 |> with_iterations 3
            |> with_trace true)
          (Option.get (Nvsc_apps.Apps.find "cam"))))

let test_conservation () =
  let r = Lazy.force report in
  let lines =
    List.fold_left
      (fun acc (row : TA.row) -> acc + row.line_reads + row.line_writes)
      0 r.rows
  in
  Alcotest.(check int) "attributed lines match rows" r.attributed lines;
  let shares =
    List.fold_left (fun acc (row : TA.row) -> acc +. row.energy_share) 0. r.rows
  in
  Alcotest.(check bool) "shares sum to 1" true (Float.abs (shares -. 1.) < 1e-9);
  Alcotest.(check bool) "movable fraction in range" true
    (r.movable_energy_fraction >= 0. && r.movable_energy_fraction <= 1.)

let test_sorted_and_readonly_present () =
  let r = Lazy.force report in
  let rec descending = function
    | (a : TA.row) :: (b :: _ as rest) ->
      a.energy_nj >= b.energy_nj && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "descending energy" true (descending r.rows);
  (* the Legendre table is read-only at the application level; at the
     memory level only its boundary lines may ever be written back —
     cache-line false sharing with adjacent objects *)
  let leg = List.find (fun (row : TA.row) -> row.name = "leg_coef") r.rows in
  Alcotest.(check bool) "at most boundary-line writes" true
    (leg.TA.line_writes <= 2);
  Alcotest.(check bool) "and it is NVRAM-friendly" true
    (leg.TA.verdict = Nvsc_nvram.Suitability.Nvram_friendly)

let test_requires_trace () =
  let r =
    Nvsc_core.Scavenger.run
      Nvsc_core.Scavenger.Config.(
        default |> with_scale 0.25 |> with_iterations 1)
      (Option.get (Nvsc_apps.Apps.find "gtc"))
  in
  Alcotest.check_raises "no trace"
    (Invalid_argument "Traffic_attribution.analyze: result lacks a trace")
    (fun () -> ignore (TA.analyze r))

let suite =
  [
    Alcotest.test_case "interval find" `Quick test_find;
    Alcotest.test_case "interval empty" `Quick test_empty;
    Alcotest.test_case "interval validation" `Quick test_validation;
    Alcotest.test_case "interval validation edge cases" `Quick
      test_validation_edge_cases;
    QCheck_alcotest.to_alcotest find_equals_linear_prop;
    Alcotest.test_case "traffic conservation" `Slow test_conservation;
    Alcotest.test_case "traffic sorted, read-only clean" `Slow
      test_sorted_and_readonly_present;
    Alcotest.test_case "traffic requires trace" `Quick test_requires_trace;
  ]
