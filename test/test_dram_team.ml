(* Bank-sharded DRAM controller (ISSUE 10): the classify-then-replay team
   must reproduce the serial FCFS controller byte for byte — every
   counter and every float (timing, energy, latency percentiles) — for
   every shard count, delivery batch capacity, row policy, address
   mapping scheme and technology. *)

module Sink = Nvsc_memtrace.Sink
module Access = Nvsc_memtrace.Access
module Org = Nvsc_dramsim.Org
module Controller = Nvsc_dramsim.Controller
module Controller_team = Nvsc_dramsim.Controller_team
module Memory_system = Nvsc_dramsim.Memory_system
module Tech = Nvsc_nvram.Technology

let ddr3 = Tech.get Tech.DDR3
let pcram = Tech.get Tech.PCRAM

let test_shards_for () =
  (* paper organisation: 16 ranks x 16 banks = 256 flat banks *)
  List.iter
    (fun (req, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "shards_for %d" req)
        expect
        (Controller_team.shards_for req))
    [ (0, 1); (1, 1); (2, 2); (3, 2); (8, 8); (1000, 256) ];
  let org = Org.make ~ranks:1 ~banks:4 () in
  Alcotest.(check int) "capped at total banks" 4
    (Controller_team.shards_for ~org 64)

(* Mixed line-granular stream shaped like the filtered memory traffic the
   controller sees: row-local sweeps (row-hit heavy), a pseudo-random
   scatter across banks and rows (conflict/activation heavy), and a
   read/write blend, long enough to cross DDR3 refresh windows. *)
let synth_stream n =
  let lcg = ref 424242 in
  let next () =
    lcg := (!lcg * 1103515245) + 12345;
    (!lcg lsr 11) land 0xFFFFFFF
  in
  List.init n (fun i ->
      let addr =
        if i land 7 < 5 then (i / 8 * 64 * 17) land 0x3FFFFC0
        else next () land 0x7FFFFC0
      in
      let op = if i land 5 = 0 then Access.Write else Access.Read in
      (addr, op))

(* Drive a consumer in [cap]-sized slices through the sink-batch shape. *)
let deliver refs ~cap consume =
  let batch = Sink.Batch.create cap in
  let rec go refs =
    match refs with
    | [] -> ()
    | _ ->
      let chunk = List.filteri (fun i _ -> i < cap) refs in
      let rest = List.filteri (fun i _ -> i >= cap) refs in
      List.iteri
        (fun i (addr, op) -> Sink.Batch.set batch i ~addr ~size:64 ~op)
        chunk;
      consume batch ~first:0 ~n:(List.length chunk);
      go rest
  in
  go refs

let check_stats ctx (s : Controller.stats) (t : Controller.stats) =
  (* structural equality covers every field, floats bit-for-bit *)
  if s <> t then
    Alcotest.failf
      "%s: stats diverge (accesses %d/%d, row hits %d/%d, elapsed %.6f/%.6f, \
       energy %.9f/%.9f)"
      ctx s.Controller.accesses t.Controller.accesses s.Controller.row_hits
      t.Controller.row_hits s.Controller.elapsed_ns t.Controller.elapsed_ns
      s.Controller.total_energy_nj t.Controller.total_energy_nj

let run_serial ?org ?scheme ?row_policy ~tech refs ~cap =
  let c = Controller.create ?org ?scheme ?row_policy ~tech () in
  deliver refs ~cap (Controller.consume c);
  Controller.stats c

let run_team ?org ?scheme ?row_policy ~tech refs ~cap ~shards =
  let team = Controller_team.create ?org ?scheme ?row_policy ~shards ~tech () in
  deliver refs ~cap (Controller_team.consume team);
  Controller_team.stats team

let test_differential () =
  let refs = synth_stream 30_000 in
  let serial = run_serial ~tech:ddr3 refs ~cap:65536 in
  List.iter
    (fun shards ->
      List.iter
        (fun cap ->
          let ctx = Printf.sprintf "shards=%d cap=%d" shards cap in
          check_stats ctx serial (run_team ~tech:ddr3 refs ~cap ~shards))
        [ 1; 7; 65536 ])
    [ 1; 2; 4; 8 ]

let test_differential_variants () =
  let refs = synth_stream 8_000 in
  (* closed-page policy, non-default mapping scheme, NVRAM timing, and a
     small organisation where the shard count equals the bank count *)
  List.iter
    (fun (ctx, org, scheme, row_policy, tech) ->
      let serial = run_serial ?org ?scheme ?row_policy ~tech refs ~cap:4096 in
      List.iter
        (fun shards ->
          check_stats
            (Printf.sprintf "%s shards=%d" ctx shards)
            serial
            (run_team ?org ?scheme ?row_policy ~tech refs ~cap:4096 ~shards))
        [ 2; 4 ])
    [
      ("closed-page", None, None, Some Controller.Closed_page, ddr3);
      ("rank-bank", None, Some Nvsc_dramsim.Address_mapping.Row_rank_bank_col,
       None, ddr3);
      ("interleave", None, Some Nvsc_dramsim.Address_mapping.Line_interleave,
       None, pcram);
      ("tiny-org", Some (Org.make ~ranks:1 ~banks:4 ~rows:64 ()), None, None,
       ddr3);
    ]

let test_compare_technologies_bank_shards () =
  let refs = synth_stream 6_000 in
  let log = Nvsc_memtrace.Trace_log.create () in
  List.iter
    (fun (addr, op) ->
      Nvsc_memtrace.Trace_log.record_raw log ~addr ~size:64 ~op)
    refs;
  let replay sink = Nvsc_memtrace.Trace_log.replay_batch log sink in
  let serial =
    Memory_system.compare_technologies ~techs:Tech.paper_set ~replay ()
  in
  List.iter
    (fun bank_shards ->
      let sharded =
        Memory_system.compare_technologies ~bank_shards ~techs:Tech.paper_set
          ~replay ()
      in
      List.iter2
        (fun ((ts : Tech.t), ss) ((tp : Tech.t), sp) ->
          Alcotest.(check string) "tech order" ts.Tech.name tp.Tech.name;
          check_stats
            (Printf.sprintf "%s bank_shards=%d" ts.Tech.name bank_shards)
            ss sp)
        serial sharded)
    [ 2; 4 ]

let test_create_validation () =
  Alcotest.check_raises "pow2"
    (Invalid_argument
       "Controller_team.create: shard count must be a power of two") (fun () ->
      ignore (Controller_team.create ~shards:3 ~tech:ddr3 ()));
  Alcotest.check_raises "too wide"
    (Invalid_argument "Controller_team.create: more shards than banks")
    (fun () ->
      ignore
        (Controller_team.create
           ~org:(Org.make ~ranks:1 ~banks:2 ())
           ~shards:4 ~tech:ddr3 ()))

(* Property: for arbitrary (bank-spread, op) streams the team's stats are
   structurally identical to the serial controller's — the equivalence
   does not rest on any niceness of the synthetic streams above. *)
let test_team_equiv_prop =
  QCheck.Test.make ~name:"bank-sharded team equals serial controller"
    ~count:30
    QCheck.(
      pair (int_range 1 3)
        (list_of_size Gen.(int_range 1 400)
           (pair (int_range 0 2_000_000) bool)))
    (fun (shards_pow, evs) ->
      let refs =
        List.map
          (fun (l, w) ->
            ((l * 64) land 0x7FFFFC0, if w then Access.Write else Access.Read))
          evs
      in
      let shards = 1 lsl shards_pow in
      run_serial ~tech:ddr3 refs ~cap:64
      = run_team ~tech:ddr3 refs ~cap:64 ~shards)

let suite =
  [
    Alcotest.test_case "shard width follows the organisation" `Quick
      test_shards_for;
    Alcotest.test_case "team equals serial controller (widths x caps)" `Slow
      test_differential;
    Alcotest.test_case "team equals serial across policies/schemes/orgs"
      `Slow test_differential_variants;
    Alcotest.test_case "compare_technologies bank_shards is byte-identical"
      `Slow test_compare_technologies_bank_shards;
    Alcotest.test_case "team creation validation" `Quick test_create_validation;
    QCheck_alcotest.to_alcotest test_team_equiv_prop;
  ]
