module Org = Nvsc_dramsim.Org
module Timing = Nvsc_dramsim.Timing
module Power_params = Nvsc_dramsim.Power_params
module Controller = Nvsc_dramsim.Controller
module Memory_system = Nvsc_dramsim.Memory_system
module Tech = Nvsc_nvram.Technology
module Access = Nvsc_memtrace.Access

let ddr3 = Tech.get Tech.DDR3
let pcram = Tech.get Tech.PCRAM
let sttram = Tech.get Tech.STTRAM

let test_timing_derivation () =
  let t = Timing.of_tech pcram ~org:Org.paper in
  Alcotest.(check (float 1e-9)) "tRCD = read latency" 20. t.Timing.t_rcd_ns;
  Alcotest.(check (float 1e-9)) "tWR = write latency" 100. t.Timing.t_wr_ns;
  Alcotest.(check (float 1e-9)) "burst: 8 beats at 0.625ns" 5. t.Timing.t_burst_ns;
  let d = Timing.of_tech ddr3 ~org:Org.paper in
  Alcotest.(check (float 1e-9)) "same peripheral tCAS" t.Timing.t_cas_ns
    d.Timing.t_cas_ns

let test_row_miss_penalty () =
  let t = Timing.of_tech ddr3 ~org:Org.paper in
  Alcotest.(check (float 1e-9)) "no open row: tRCD only" 10.
    (Timing.row_miss_penalty_ns t ~had_open_row:false);
  Alcotest.(check (float 1e-9)) "open row: tRP + tRCD" 15.
    (Timing.row_miss_penalty_ns t ~had_open_row:true)

let test_power_params () =
  let d = Power_params.of_tech ddr3 ~org:Org.paper in
  let p = Power_params.of_tech pcram ~org:Org.paper in
  Alcotest.(check bool) "DRAM refreshes" true (d.Power_params.e_refresh_nj > 0.);
  Alcotest.(check (float 1e-9)) "NVRAM refresh is zero (paper §IV)" 0.
    p.Power_params.e_refresh_nj;
  Alcotest.(check (float 1e-9)) "shared background power"
    d.Power_params.p_background_w p.Power_params.p_background_w;
  Alcotest.(check (float 1e-9)) "PCRAM burst currents from the paper" 0.04
    p.Power_params.burst_read_current_a;
  Alcotest.(check (float 1e-9)) "PCRAM write current" 0.15
    p.Power_params.burst_write_current_a;
  (* energy helpers *)
  Alcotest.(check (float 1e-9)) "read energy = V*I*t" (1.5 *. 0.04 *. 5.)
    (Power_params.burst_read_energy_nj p ~t_burst_ns:5.)

let seq_reads n = List.init n (fun i -> Access.read ~addr:(i * 64) ~size:64)
let seq_writes n = List.init n (fun i -> Access.write ~addr:(i * 64) ~size:64)

let test_row_hits_on_stream () =
  let s = Memory_system.run_trace ~tech:ddr3 (seq_reads 256) in
  (* two 128-line rows -> 2 misses, 254 hits *)
  Alcotest.(check int) "row misses" 2 s.Controller.row_misses;
  Alcotest.(check int) "row hits" 254 s.Controller.row_hits;
  Alcotest.(check int) "activations" 2 s.Controller.activations

let test_counts () =
  let s = Memory_system.run_trace ~tech:ddr3 (seq_reads 10 @ seq_writes 5) in
  Alcotest.(check int) "accesses" 15 s.Controller.accesses;
  Alcotest.(check int) "reads" 10 s.Controller.reads;
  Alcotest.(check int) "writes" 5 s.Controller.writes;
  Alcotest.(check bool) "hit rate" true (s.Controller.row_hit_rate > 0.5)

let test_elapsed_monotone_with_latency () =
  let trace = seq_writes 2000 in
  let t_ddr = (Memory_system.run_trace ~tech:ddr3 trace).Controller.elapsed_ns in
  let t_stt = (Memory_system.run_trace ~tech:sttram trace).Controller.elapsed_ns in
  let t_pcm = (Memory_system.run_trace ~tech:pcram trace).Controller.elapsed_ns in
  Alcotest.(check bool) "DDR3 <= STTRAM" true (t_ddr <= t_stt);
  Alcotest.(check bool) "STTRAM < PCRAM (write recovery)" true (t_stt < t_pcm)

let test_refresh_only_dram () =
  (* run long enough to cross several tREFI windows *)
  let trace = seq_reads 20000 in
  let s_d = Memory_system.run_trace ~tech:ddr3 trace in
  let s_p = Memory_system.run_trace ~tech:pcram trace in
  Alcotest.(check bool) "DRAM refreshed" true (s_d.Controller.refreshes > 0);
  Alcotest.(check int) "NVRAM never refreshes" 0 s_p.Controller.refreshes;
  Alcotest.(check (float 1e-9)) "no NVRAM refresh energy" 0.
    s_p.Controller.refresh_energy_nj

let test_energy_additivity () =
  let s = Memory_system.run_trace ~tech:ddr3 (seq_reads 5000) in
  Alcotest.(check (float 1e-3)) "components sum to total"
    s.Controller.total_energy_nj
    (s.Controller.burst_energy_nj +. s.Controller.act_pre_energy_nj
    +. s.Controller.refresh_energy_nj +. s.Controller.background_energy_nj);
  Alcotest.(check bool) "all components non-negative" true
    (s.Controller.burst_energy_nj >= 0.
    && s.Controller.act_pre_energy_nj >= 0.
    && s.Controller.refresh_energy_nj >= 0.
    && s.Controller.background_energy_nj >= 0.)

let test_avg_power_consistency () =
  let s = Memory_system.run_trace ~tech:ddr3 (seq_reads 5000) in
  Alcotest.(check (float 1e-6)) "power = energy / time" s.Controller.avg_power_w
    (s.Controller.total_energy_nj /. s.Controller.elapsed_ns)

let test_latency_percentiles () =
  let s = Memory_system.run_trace ~tech:pcram (seq_writes 2000) in
  Alcotest.(check bool) "percentiles ordered" true
    (s.Controller.p50_latency_ns <= s.Controller.p95_latency_ns
    && s.Controller.p95_latency_ns <= s.Controller.p99_latency_ns);
  Alcotest.(check bool) "positive" true (s.Controller.p50_latency_ns > 0.);
  (* on a write stream with 100ns recovery the tail is far above the
     median's neighbourhood *)
  Alcotest.(check bool) "write-recovery tail" true
    (s.Controller.p99_latency_ns > s.Controller.avg_latency_ns)

let test_window_required_positive () =
  Alcotest.check_raises "window"
    (Invalid_argument "Controller.create: window must be positive") (fun () ->
      ignore (Controller.create ~window:0 ~tech:ddr3 ()))

let test_normalized_power_table6_band () =
  (* a mixed trace with a realistic read/write blend; the Table VI shape:
     every NVRAM saves >= 25%, PCRAM <= STTRAM <= MRAM *)
  let rng = Nvsc_util.Rng.of_int 99 in
  let trace =
    List.init 30_000 (fun i ->
        let addr = ((i * 64) + (64 * 128 * Nvsc_util.Rng.int rng 4)) in
        if Nvsc_util.Rng.bernoulli rng 0.3 then Access.write ~addr ~size:64
        else Access.read ~addr ~size:64)
  in
  let results =
    Memory_system.compare_technologies ~techs:Tech.paper_set
      ~replay:(fun sink -> List.iter (Nvsc_memtrace.Sink.push_access sink) trace)
      ()
  in
  let norm = Memory_system.normalized_power results in
  let get t =
    List.assoc t (List.map (fun ((x : Tech.t), p) -> (x.tech, p)) norm)
  in
  Alcotest.(check (float 1e-9)) "DDR3 baseline" 1.0 (get Tech.DDR3);
  let p = get Tech.PCRAM and s = get Tech.STTRAM and m = get Tech.MRAM in
  Alcotest.(check bool) "PCRAM saves" true (p < 0.75);
  Alcotest.(check bool) "ordering PCRAM <= STTRAM" true (p <= s);
  Alcotest.(check bool) "ordering STTRAM <= MRAM" true (s <= m);
  Alcotest.(check bool) "MRAM saves at least 25%" true (m < 0.78)

let test_normalized_requires_baseline () =
  Alcotest.check_raises "no DDR3"
    (Invalid_argument "Memory_system.normalized_power: no DDR3 baseline")
    (fun () ->
      ignore
        (Memory_system.normalized_power
           [ (pcram, Memory_system.run_trace ~tech:pcram (seq_reads 2)) ]))

let test_latency_positive_prop =
  QCheck.Test.make ~name:"latency and makespan positive on any trace" ~count:20
    QCheck.(list_of_size Gen.(int_range 1 200) (pair (int_range 0 100000) bool))
    (fun evs ->
      let trace =
        List.map
          (fun (l, w) ->
            if w then Access.write ~addr:(l * 64) ~size:64
            else Access.read ~addr:(l * 64) ~size:64)
          evs
      in
      let s = Memory_system.run_trace ~tech:sttram trace in
      s.Controller.elapsed_ns > 0. && s.Controller.avg_latency_ns > 0.
      && s.Controller.row_hits + s.Controller.row_misses
         = s.Controller.accesses)

let suite =
  [
    Alcotest.test_case "timing derivation" `Quick test_timing_derivation;
    Alcotest.test_case "row miss penalty" `Quick test_row_miss_penalty;
    Alcotest.test_case "power parameters" `Quick test_power_params;
    Alcotest.test_case "row hits on stream" `Quick test_row_hits_on_stream;
    Alcotest.test_case "access counts" `Quick test_counts;
    Alcotest.test_case "makespan grows with latency" `Quick
      test_elapsed_monotone_with_latency;
    Alcotest.test_case "refresh only for DRAM" `Quick test_refresh_only_dram;
    Alcotest.test_case "energy additivity" `Quick test_energy_additivity;
    Alcotest.test_case "power = energy/time" `Quick test_avg_power_consistency;
    Alcotest.test_case "latency percentiles" `Quick test_latency_percentiles;
    Alcotest.test_case "window validation" `Quick test_window_required_positive;
    Alcotest.test_case "Table VI band on synthetic trace" `Quick
      test_normalized_power_table6_band;
    Alcotest.test_case "baseline required" `Quick test_normalized_requires_baseline;
    QCheck_alcotest.to_alcotest test_latency_positive_prop;
  ]
