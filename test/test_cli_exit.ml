(* The nvscav exit-code contract, end-to-end against the real binary:
   0 success, 2 for every usage error (with a diagnostic on stderr and
   nothing on stdout).  Historically parse errors leaked cmdliner's 124,
   [--jobs 0] was silently clamped into a successful run, and
   out-of-range [--scale]/[--iterations] escaped as uncaught exceptions
   (125); this table pins each of those down. *)

let nvscav =
  lazy
    (match Sys.getenv_opt "NVSCAV" with
    | None -> Alcotest.fail "NVSCAV is not set (run the tests through dune)"
    | Some p ->
      if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Spawn the binary with stdout/stderr captured; returns
   (exit code, stdout, stderr). *)
let run_nvscav args =
  let exe = Lazy.force nvscav in
  let out_f = Filename.temp_file "nvscav-out" ".txt" in
  let err_f = Filename.temp_file "nvscav-err" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove out_f with Sys_error _ -> ());
      try Sys.remove err_f with Sys_error _ -> ())
    (fun () ->
      let fd_out = Unix.openfile out_f [ O_WRONLY; O_TRUNC ] 0o600 in
      let fd_err = Unix.openfile err_f [ O_WRONLY; O_TRUNC ] 0o600 in
      let fd_in = Unix.openfile "/dev/null" [ O_RDONLY ] 0 in
      let pid =
        Unix.create_process exe
          (Array.of_list (exe :: args))
          fd_in fd_out fd_err
      in
      Unix.close fd_in;
      Unix.close fd_out;
      Unix.close fd_err;
      let _, status = Unix.waitpid [] pid in
      let code =
        match status with
        | Unix.WEXITED n -> n
        | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
      in
      (code, read_file out_f, read_file err_f))

(* (name, argv, expected exit code) — every expected-2 row is a usage
   error and must also leave a diagnostic on stderr and stdout empty. *)
let table =
  [
    ("unknown application", [ "analyze"; "nosuchapp" ], 2);
    ("unknown subcommand", [ "nosuchcmd" ], 2);
    ("missing positional", [ "analyze" ], 2);
    ("unknown flag", [ "list"; "--nosuchflag" ], 2);
    ("jobs zero", [ "sweep"; "--jobs"; "0"; "--apps"; "gtc" ], 2);
    ("iterations zero", [ "analyze"; "gtc"; "--iterations"; "0" ], 2);
    ("scale zero", [ "analyze"; "gtc"; "--scale"; "0" ], 2);
    ("scale negative", [ "analyze"; "gtc"; "--scale"; "-1" ], 2);
    ("scale not a number", [ "analyze"; "gtc"; "--scale"; "lots" ], 2);
    ("cache-max zero", [ "sweep"; "--cache-max"; "0"; "--apps"; "gtc" ], 2);
    ("missing trace file", [ "power"; "gtc"; "--from-file"; "/nonexistent" ], 2);
    ("replay missing trace", [ "replay"; "/nonexistent.nvt" ], 2);
    ("sweep bad override", [ "sweep"; "--override"; "bogus=1" ], 2);
    ("sweep unknown kind", [ "sweep"; "--kinds"; "nosuchkind" ], 2);
    ("unknown technology", [ "run"; "gtc"; "--tech"; "unobtainium" ], 2);
    ("client no daemon", [ "client"; "ping"; "--socket"; "/nonexistent.sock" ], 2);
    ("serve bad port", [ "serve"; "--port"; "0" ], 2);
    ("list ok", [ "list" ], 0);
    ("version ok", [ "--version" ], 0);
    ("help ok", [ "analyze"; "--help=plain" ], 0);
  ]

let test_exit_codes () =
  List.iter
    (fun (name, args, expected) ->
      let code, out, err = run_nvscav args in
      Alcotest.(check int)
        (Printf.sprintf "%s: exit code of `nvscav %s`" name
           (String.concat " " args))
        expected code;
      if expected = 2 then begin
        Alcotest.(check bool)
          (name ^ ": usage error leaves a diagnostic on stderr")
          true (String.length err > 0);
        Alcotest.(check string)
          (name ^ ": usage error prints nothing on stdout")
          "" out
      end)
    table

let suite =
  [ Alcotest.test_case "exit-code table" `Slow test_exit_codes ]
