module Cache = Nvsc_cachesim.Cache
module P = Nvsc_cachesim.Cache_params

let tiny ?(write_miss = P.Write_allocate) ?(assoc = 2) ?(sets = 4) () =
  P.make ~name:"tiny" ~size_bytes:(64 * assoc * sets) ~associativity:assoc
    ~write_miss ()

(* Rejections must name the offending field and its value. *)
let test_params_validation () =
  Alcotest.check_raises "non-pow2 line"
    (Invalid_argument
       "Cache_params.make: line_bytes = 48 is not a power of two") (fun () ->
      ignore
        (P.make ~name:"x" ~size_bytes:1024 ~associativity:2 ~line_bytes:48
           ~write_miss:P.Write_allocate ()));
  Alcotest.check_raises "non-positive associativity"
    (Invalid_argument "Cache_params.make: associativity = 0 is not positive")
    (fun () ->
      ignore
        (P.make ~name:"x" ~size_bytes:1024 ~associativity:0
           ~write_miss:P.Write_allocate ()));
  Alcotest.check_raises "indivisible size"
    (Invalid_argument
       "Cache_params.make: size_bytes = 1000 is not divisible into sets of \
        line_bytes * associativity = 128 bytes") (fun () ->
      ignore
        (P.make ~name:"x" ~size_bytes:1000 ~associativity:2
           ~write_miss:P.Write_allocate ()));
  Alcotest.check_raises "non-pow2 sets"
    (Invalid_argument
       "Cache_params.make: size_bytes = 384 gives 3 sets (associativity = 2, \
        line_bytes = 64), which is not a power of two") (fun () ->
      ignore
        (P.make ~name:"x" ~size_bytes:384 ~associativity:2
           ~write_miss:P.Write_allocate ()));
  Alcotest.(check int) "paper L1 sets" 128 (P.sets P.paper_l1d);
  Alcotest.(check int) "paper L2 sets" 1024 (P.sets P.paper_l2)

let test_cold_miss_then_hit () =
  let c = Cache.create (tiny ()) in
  let e = Cache.read c ~line:0 in
  Alcotest.(check bool) "cold miss" false (Cache.Effect.hit e);
  Alcotest.(check bool) "fills" true (Cache.Effect.fills e);
  Alcotest.(check bool) "no writeback" false (Cache.Effect.has_writeback e);
  let e = Cache.read c ~line:0 in
  Alcotest.(check bool) "hit" true (Cache.Effect.hit e);
  Alcotest.(check int) "stats" 1 (Cache.read_hits c);
  Alcotest.(check int) "misses" 1 (Cache.read_misses c)

let test_lru_eviction_order () =
  let c = Cache.create (tiny ~assoc:2 ~sets:1 ()) in
  ignore (Cache.read c ~line:0);
  ignore (Cache.read c ~line:1);
  ignore (Cache.read c ~line:0);
  (* line 1 is now LRU; inserting line 2 must evict it *)
  ignore (Cache.read c ~line:2);
  Alcotest.(check bool) "0 resident" true (Cache.probe c ~line:0);
  Alcotest.(check bool) "1 evicted" false (Cache.probe c ~line:1);
  Alcotest.(check bool) "2 resident" true (Cache.probe c ~line:2);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c)

let test_dirty_eviction_writeback () =
  let c = Cache.create (tiny ~assoc:1 ~sets:1 ()) in
  ignore (Cache.write c ~line:0);
  Alcotest.(check bool) "dirty" true (Cache.is_dirty c ~line:0);
  let e = Cache.read c ~line:1 in
  Alcotest.(check bool) "writeback of dirty victim" true
    (Cache.Effect.has_writeback e && Cache.Effect.writeback_line e = 0);
  Alcotest.(check int) "dirty evictions" 1 (Cache.dirty_evictions c)

let test_clean_eviction_no_writeback () =
  let c = Cache.create (tiny ~assoc:1 ~sets:1 ()) in
  ignore (Cache.read c ~line:0);
  let e = Cache.read c ~line:1 in
  Alcotest.(check bool) "no writeback" false (Cache.Effect.has_writeback e)

let test_no_write_allocate () =
  let c = Cache.create (tiny ~write_miss:P.No_write_allocate ()) in
  let e = Cache.write c ~line:5 in
  Alcotest.(check bool) "miss" false (Cache.Effect.hit e);
  Alcotest.(check bool) "forwarded" true (Cache.Effect.forwards_write e);
  Alcotest.(check bool) "no fill" false (Cache.Effect.fills e);
  Alcotest.(check bool) "not resident" false (Cache.probe c ~line:5);
  (* write hit still dirties *)
  ignore (Cache.read c ~line:5);
  let e = Cache.write c ~line:5 in
  Alcotest.(check bool) "write hit" true (Cache.Effect.hit e);
  Alcotest.(check bool) "dirty now" true (Cache.is_dirty c ~line:5)

let test_write_allocate_dirties () =
  let c = Cache.create (tiny ()) in
  let e = Cache.write c ~line:3 in
  Alcotest.(check bool) "fill on write miss" true (Cache.Effect.fills e);
  Alcotest.(check bool) "dirty after allocate" true (Cache.is_dirty c ~line:3)

let test_flush_dirty () =
  let c = Cache.create (tiny ()) in
  ignore (Cache.write c ~line:0);
  ignore (Cache.write c ~line:1);
  ignore (Cache.read c ~line:2);
  let flushed = ref [] in
  Cache.flush_dirty c (fun l -> flushed := l :: !flushed);
  Alcotest.(check (list int)) "both dirty lines" [ 0; 1 ]
    (List.sort compare !flushed);
  (* second flush is a no-op: lines are clean now *)
  let again = ref 0 in
  Cache.flush_dirty c (fun _ -> incr again);
  Alcotest.(check int) "clean after flush" 0 !again

let test_invalidate_all () =
  let c = Cache.create (tiny ()) in
  ignore (Cache.write c ~line:0);
  Cache.invalidate_all c;
  Alcotest.(check int) "empty" 0 (Cache.resident_lines c);
  Alcotest.(check bool) "gone" false (Cache.probe c ~line:0)

let test_probe_does_not_touch_lru () =
  let c = Cache.create (tiny ~assoc:2 ~sets:1 ()) in
  ignore (Cache.read c ~line:0);
  ignore (Cache.read c ~line:1);
  (* probing 0 must NOT refresh it *)
  ignore (Cache.probe c ~line:0);
  ignore (Cache.read c ~line:2);
  Alcotest.(check bool) "0 was still LRU" false (Cache.probe c ~line:0)

let test_capacity_bound_prop =
  QCheck.Test.make ~name:"resident lines never exceed capacity" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 500) (int_range 0 1000))
    (fun lines ->
      let c = Cache.create (tiny ~assoc:2 ~sets:4 ()) in
      List.iter (fun l -> ignore (Cache.read c ~line:l)) lines;
      Cache.resident_lines c <= 8)

let test_hit_after_miss_prop =
  QCheck.Test.make ~name:"immediate re-access always hits" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 200) (int_range 0 1000))
    (fun lines ->
      let c = Cache.create (tiny ~assoc:4 ~sets:8 ()) in
      List.for_all
        (fun l ->
          ignore (Cache.read c ~line:l);
          let e = Cache.read c ~line:l in
          Cache.Effect.hit e)
        lines)

let test_miss_rate () =
  let c = Cache.create (tiny ()) in
  ignore (Cache.read c ~line:0);
  ignore (Cache.read c ~line:0);
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Cache.miss_rate c);
  Cache.reset_stats c;
  Alcotest.(check (float 1e-9)) "reset" 0. (Cache.miss_rate c)

let suite =
  [
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "dirty eviction writeback" `Quick
      test_dirty_eviction_writeback;
    Alcotest.test_case "clean eviction" `Quick test_clean_eviction_no_writeback;
    Alcotest.test_case "no-write-allocate" `Quick test_no_write_allocate;
    Alcotest.test_case "write-allocate dirties" `Quick
      test_write_allocate_dirties;
    Alcotest.test_case "flush dirty" `Quick test_flush_dirty;
    Alcotest.test_case "invalidate all" `Quick test_invalidate_all;
    Alcotest.test_case "probe preserves LRU" `Quick
      test_probe_does_not_touch_lru;
    QCheck_alcotest.to_alcotest test_capacity_bound_prop;
    QCheck_alcotest.to_alcotest test_hit_after_miss_prop;
    Alcotest.test_case "miss rate" `Quick test_miss_rate;
  ]
