module Sink = Nvsc_memtrace.Sink
module Trace_log = Nvsc_memtrace.Trace_log
module Access = Nvsc_memtrace.Access

let test_sink_flush_on_full () =
  let seen = ref [] in
  let s =
    Sink.create ~capacity:4 (fun b ~first ~n ->
        for i = first to first + n - 1 do
          seen := Sink.Batch.access b i :: !seen
        done)
  in
  for i = 0 to 9 do
    Sink.push s ~addr:i ~size:8 ~op:Access.Read
  done;
  (* two automatic flushes of 4; 2 still buffered *)
  Alcotest.(check int) "capacity flushes" 2 (Sink.capacity_flushes s);
  Alcotest.(check int) "seen" 8 (List.length !seen);
  Sink.flush s;
  Alcotest.(check int) "after force" 10 (List.length !seen);
  Alcotest.(check int) "boundary flushes" 1 (Sink.boundary_flushes s);
  Alcotest.(check int) "pushed" 10 (Sink.pushed s);
  Alcotest.(check int) "batches" 3 (Sink.batches s);
  (* order preserved *)
  let addrs = List.rev_map (fun (a : Access.t) -> a.addr) !seen in
  Alcotest.(check (list int)) "order" (List.init 10 Fun.id) addrs

let test_sink_empty_flush () =
  let calls = ref 0 in
  let s = Sink.create ~capacity:4 (fun _ ~first:_ ~n:_ -> incr calls) in
  Sink.flush s;
  Alcotest.(check int) "no empty flush" 0 !calls;
  Alcotest.(check int) "no batches" 0 (Sink.batches s)

let test_sink_deliver_zero_copy () =
  let batches = ref [] in
  let s =
    Sink.create ~capacity:4 (fun b ~first ~n -> batches := (b, first, n) :: !batches)
  in
  let b = Sink.Batch.create 8 in
  for i = 0 to 5 do
    Sink.Batch.set b i ~addr:(100 + i) ~size:64 ~op:Access.Write
  done;
  (* one buffered push, then a delivered batch: the push must flush first *)
  Sink.push s ~addr:7 ~size:8 ~op:Access.Read;
  Sink.deliver s b ~first:1 ~n:4;
  Alcotest.(check int) "two consumer calls" 2 (List.length !batches);
  (match !batches with
  | [ (delivered, first, n); (_, _, 1) ] ->
    Alcotest.(check bool) "same batch, not a copy" true (delivered == b);
    Alcotest.(check int) "first" 1 first;
    Alcotest.(check int) "n" 4 n
  | _ -> Alcotest.fail "unexpected delivery shape");
  Alcotest.(check int) "pushed counts delivered refs" 5 (Sink.pushed s);
  (* empty deliveries are dropped *)
  Sink.deliver s b ~first:0 ~n:0;
  Alcotest.(check int) "no empty delivery" 2 (List.length !batches)

let test_batch_accessors () =
  let b = Sink.Batch.create 2 in
  Sink.Batch.set b 0 ~addr:0x40 ~size:64 ~op:Access.Read;
  Sink.Batch.set b 1 ~addr:0x80 ~size:32 ~op:Access.Write;
  Alcotest.(check int) "addr" 0x80 (Sink.Batch.addr b 1);
  Alcotest.(check int) "size" 32 (Sink.Batch.size b 1);
  Alcotest.(check bool) "write op" true (Sink.Batch.is_write b 1);
  Alcotest.(check bool) "read op" false (Sink.Batch.is_write b 0);
  Sink.Batch.ensure b 5;
  Alcotest.(check bool) "grown" true (Sink.Batch.capacity b >= 5);
  Alcotest.(check int) "data preserved" 0x40 (Sink.Batch.addr b 0);
  Alcotest.(check bool) "ops preserved" true (Sink.Batch.is_write b 1)

let test_batch_checked_slices () =
  (* with debug checks on, malformed slices are caught at the deliver
     boundary instead of silently reading stale batch tails *)
  let prev = Sink.checks_enabled () in
  Sink.set_debug_checks true;
  Fun.protect ~finally:(fun () -> Sink.set_debug_checks prev) @@ fun () ->
  let s = Sink.create ~capacity:4 (fun _ ~first:_ ~n:_ -> ()) in
  let b = Sink.Batch.create 4 in
  Sink.Batch.set b 0 ~addr:0x40 ~size:64 ~op:Access.Read;
  Alcotest.check_raises "slice past capacity"
    (Invalid_argument "Sink.Batch: slice first=2 n=3 outside capacity 4")
    (fun () -> Sink.deliver s b ~first:2 ~n:3);
  Alcotest.check_raises "negative first"
    (Invalid_argument "Sink.Batch: slice first=-1 n=2 outside capacity 4")
    (fun () -> Sink.deliver s b ~first:(-1) ~n:2);
  Alcotest.check_raises "checked accessor"
    (Invalid_argument "index out of bounds")
    (fun () -> ignore (Sink.Batch.addr b 7));
  (* a well-formed slice still goes through *)
  Sink.deliver s b ~first:0 ~n:1;
  Alcotest.(check int) "valid slice delivered" 1 (Sink.pushed s)

let test_log_roundtrip () =
  let log = Trace_log.create ~initial_capacity:2 () in
  let accesses =
    [
      Access.read ~addr:0x100 ~size:64;
      Access.write ~addr:0x200 ~size:64;
      Access.read ~addr:0x300 ~size:8;
    ]
  in
  List.iter (Trace_log.record log) accesses;
  Alcotest.(check int) "length" 3 (Trace_log.length log);
  Alcotest.(check int) "reads" 2 (Trace_log.reads log);
  Alcotest.(check int) "writes" 1 (Trace_log.writes log);
  List.iteri
    (fun i expected ->
      let got = Trace_log.get log i in
      Alcotest.(check bool)
        (Printf.sprintf "record %d" i)
        true
        (got.Access.addr = expected.Access.addr
        && got.size = expected.size
        && got.op = expected.op))
    accesses

let test_log_replay_order () =
  let log = Trace_log.create () in
  for i = 0 to 99 do
    Trace_log.record log (Access.read ~addr:i ~size:8)
  done;
  let replayed = ref [] in
  Trace_log.replay log (fun a -> replayed := a.Access.addr :: !replayed);
  Alcotest.(check (list int)) "order" (List.init 100 Fun.id) (List.rev !replayed)

let test_log_replay_batch () =
  let log = Trace_log.create ~initial_capacity:4 () in
  for i = 0 to 99 do
    Trace_log.record log
      (if i mod 3 = 0 then Access.write ~addr:i ~size:64
       else Access.read ~addr:i ~size:64)
  done;
  (* batched replay must equal per-access replay, in one delivery *)
  let replayed = ref [] in
  let s =
    Sink.of_fn (fun a -> replayed := a :: !replayed)
  in
  Trace_log.replay_batch log s;
  Alcotest.(check int) "one batch" 1 (Sink.batches s);
  Alcotest.(check int) "all delivered" 100 (Sink.pushed s);
  let got = List.rev !replayed in
  Alcotest.(check (list int)) "addresses" (List.init 100 Fun.id)
    (List.map (fun (a : Access.t) -> a.addr) got);
  Alcotest.(check bool) "ops" true
    (List.for_all2
       (fun (a : Access.t) i -> Access.is_write a = (i mod 3 = 0))
       got
       (List.init 100 Fun.id))

let test_log_record_batch () =
  let log = Trace_log.create () in
  let b = Sink.Batch.create 8 in
  for i = 0 to 7 do
    Sink.Batch.set b i ~addr:(i * 64) ~size:64
      ~op:(if i < 3 then Access.Write else Access.Read)
  done;
  Trace_log.record_batch log b ~first:2 ~n:5;
  Alcotest.(check int) "length" 5 (Trace_log.length log);
  Alcotest.(check int) "writes" 1 (Trace_log.writes log);
  Alcotest.(check int) "reads" 4 (Trace_log.reads log);
  Alcotest.(check int) "first record" 128 (Trace_log.get log 0).Access.addr;
  (* the log's own sink records through record_batch *)
  let log2 = Trace_log.create () in
  let s = Trace_log.sink log2 in
  Sink.deliver s b ~first:0 ~n:8;
  Sink.push s ~addr:999 ~size:8 ~op:Access.Write;
  Sink.flush s;
  Alcotest.(check int) "sink records all" 9 (Trace_log.length log2);
  Alcotest.(check int) "sink writes" 4 (Trace_log.writes log2)

let test_log_clear () =
  let log = Trace_log.create () in
  Trace_log.record log (Access.write ~addr:1 ~size:8);
  Trace_log.clear log;
  Alcotest.(check int) "length" 0 (Trace_log.length log);
  Alcotest.(check int) "writes" 0 (Trace_log.writes log)

let test_log_get_bounds () =
  let log = Trace_log.create () in
  Alcotest.check_raises "oob" (Invalid_argument "Trace_log.get") (fun () ->
      ignore (Trace_log.get log 0))

let log_growth_prop =
  QCheck.Test.make ~name:"log preserves arbitrary streams" ~count:50
    QCheck.(
      list_of_size
        Gen.(int_range 0 500)
        (pair (int_range 0 (1 lsl 30)) bool))
    (fun events ->
      let log = Trace_log.create ~initial_capacity:1 () in
      List.iter
        (fun (addr, is_read) ->
          Trace_log.record log
            (if is_read then Access.read ~addr ~size:64
             else Access.write ~addr ~size:64))
        events;
      Trace_log.length log = List.length events
      && List.for_all2
           (fun (addr, is_read) i ->
             let a = Trace_log.get log i in
             a.Access.addr = addr && Access.is_read a = is_read)
           events
           (List.init (List.length events) Fun.id))

let suite =
  [
    Alcotest.test_case "sink flush on full" `Quick test_sink_flush_on_full;
    Alcotest.test_case "sink empty flush" `Quick test_sink_empty_flush;
    Alcotest.test_case "sink deliver zero-copy" `Quick
      test_sink_deliver_zero_copy;
    Alcotest.test_case "batch accessors" `Quick test_batch_accessors;
    Alcotest.test_case "batch checked slices" `Quick
      test_batch_checked_slices;
    Alcotest.test_case "log roundtrip" `Quick test_log_roundtrip;
    Alcotest.test_case "log replay order" `Quick test_log_replay_order;
    Alcotest.test_case "log replay batch" `Quick test_log_replay_batch;
    Alcotest.test_case "log record batch" `Quick test_log_record_batch;
    Alcotest.test_case "log clear" `Quick test_log_clear;
    Alcotest.test_case "log bounds" `Quick test_log_get_bounds;
    QCheck_alcotest.to_alcotest log_growth_prop;
  ]
