module H = Nvsc_cachesim.Hierarchy
module P = Nvsc_cachesim.Cache_params
module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink

let small_l1 =
  P.make ~name:"L1" ~size_bytes:(64 * 8) ~associativity:2
    ~write_miss:P.No_write_allocate ()

let small_l2 =
  P.make ~name:"L2" ~size_bytes:(64 * 32) ~associativity:4
    ~write_miss:P.Write_allocate ()

let make () =
  let trace = ref [] in
  (* capacity 1: every memory-side reference is delivered immediately, so
     the tests can inspect [trace] without flushing *)
  let sink = Sink.of_fn ~capacity:1 (fun a -> trace := a :: !trace) in
  let h = H.create ~l1d:small_l1 ~l2:small_l2 ~sink () in
  (h, trace)

let test_read_miss_generates_memory_read () =
  let h, trace = make () in
  H.access h (Access.read ~addr:0 ~size:8);
  Alcotest.(check int) "one memory read" 1 (H.memory_reads h);
  Alcotest.(check int) "no writes" 0 (H.memory_writes h);
  (match !trace with
  | [ a ] ->
    Alcotest.(check bool) "line-sized read" true
      (Access.is_read a && a.Access.size = 64 && a.Access.addr = 0)
  | _ -> Alcotest.fail "expected one access");
  (* re-access: fully cached, no new traffic *)
  H.access h (Access.read ~addr:8 ~size:8);
  Alcotest.(check int) "still one" 1 (H.memory_reads h)

let test_write_miss_propagates () =
  let h, _ = make () in
  (* L1 no-write-allocate forwards to L2; L2 write-allocate fetches *)
  H.access h (Access.write ~addr:0 ~size:8);
  Alcotest.(check int) "fill read" 1 (H.memory_reads h);
  Alcotest.(check int) "no eager write" 0 (H.memory_writes h);
  (* the dirty line only reaches memory on drain/eviction *)
  H.drain h;
  Alcotest.(check int) "writeback on drain" 1 (H.memory_writes h)

let test_drain_idempotent () =
  let h, _ = make () in
  H.access h (Access.write ~addr:0 ~size:8);
  H.drain h;
  let w = H.memory_writes h in
  H.drain h;
  Alcotest.(check int) "second drain adds nothing" w (H.memory_writes h)

let test_line_split () =
  let h, _ = make () in
  (* a 16-byte access straddling a line boundary touches two lines *)
  H.access h (Access.read ~addr:56 ~size:16);
  Alcotest.(check int) "two line accesses" 2 (H.accesses h);
  Alcotest.(check int) "two memory reads" 2 (H.memory_reads h)

let test_capacity_eviction_traffic () =
  let h, _ = make () in
  (* write a footprint larger than L2 (32 lines): must force dirty
     evictions to memory *)
  for i = 0 to 99 do
    H.access h (Access.write ~addr:(i * 64) ~size:8)
  done;
  Alcotest.(check bool) "dirty evictions reached memory" true
    (H.memory_writes h > 0);
  Alcotest.(check int) "compulsory fills" 100 (H.memory_reads h)

let test_classification () =
  let h, _ = make () in
  Alcotest.(check bool) "cold -> Mem" true
    (H.access_classified h (Access.read ~addr:0 ~size:8) = `Mem);
  Alcotest.(check bool) "hot -> L1" true
    (H.access_classified h (Access.read ~addr:0 ~size:8) = `L1);
  (* evict from tiny L1 (8 lines, 2-way/4 sets) but keep in L2: lines 0,4,8
     map to the same L1 set (4 sets) *)
  H.access h (Access.read ~addr:(4 * 64) ~size:8);
  H.access h (Access.read ~addr:(8 * 64) ~size:8);
  Alcotest.(check bool) "L1 victim -> L2" true
    (H.access_classified h (Access.read ~addr:0 ~size:8) = `L2)

let test_reset () =
  let h, _ = make () in
  H.access h (Access.write ~addr:0 ~size:8);
  H.reset h;
  Alcotest.(check int) "no accesses" 0 (H.accesses h);
  Alcotest.(check int) "no reads" 0 (H.memory_reads h);
  (* after reset the same access is cold again *)
  Alcotest.(check bool) "cold again" true
    (H.access_classified h (Access.read ~addr:0 ~size:8) = `Mem)

let test_mismatched_lines_rejected () =
  let l2_bad =
    P.make ~name:"L2" ~size_bytes:4096 ~associativity:4 ~line_bytes:128
      ~write_miss:P.Write_allocate ()
  in
  Alcotest.check_raises "line mismatch"
    (Invalid_argument "Hierarchy.create: levels must share a line size")
    (fun () -> ignore (H.create ~l1d:small_l1 ~l2:l2_bad ~sink:(Sink.null ()) ()))

let conservation_prop =
  QCheck.Test.make ~name:"all stores eventually reach memory" ~count:30
    QCheck.(list_of_size Gen.(int_range 1 300) (int_range 0 200))
    (fun lines ->
      (* write-only workload: after drain, the set of lines written to
         memory must equal the set of lines stored to *)
      let written = Hashtbl.create 64 in
      let h =
        H.create ~l1d:small_l1 ~l2:small_l2
          ~sink:
            (Sink.of_fn (fun a ->
                 if Access.is_write a then
                   Hashtbl.replace written (a.Access.addr / 64) ()))
          ()
      in
      List.iter (fun l -> H.access h (Access.write ~addr:(l * 64) ~size:8)) lines;
      H.drain h;
      List.for_all (fun l -> Hashtbl.mem written l) lines)

let suite =
  [
    Alcotest.test_case "read miss -> memory read" `Quick
      test_read_miss_generates_memory_read;
    Alcotest.test_case "write miss propagation" `Quick test_write_miss_propagates;
    Alcotest.test_case "drain idempotent" `Quick test_drain_idempotent;
    Alcotest.test_case "line splitting" `Quick test_line_split;
    Alcotest.test_case "capacity eviction traffic" `Quick
      test_capacity_eviction_traffic;
    Alcotest.test_case "access classification" `Quick test_classification;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "mismatched line sizes" `Quick
      test_mismatched_lines_rejected;
    QCheck_alcotest.to_alcotest conservation_prop;
  ]
