module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module Access = Nvsc_memtrace.Access
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Counters = Nvsc_memtrace.Counters

let test_global_allocation () =
  let ctx = Ctx.create () in
  let a = Farray.global ctx ~name:"g1" 10 in
  let b = Farray.global ctx ~name:"g2" 10 in
  Alcotest.(check bool) "in global segment" true
    (Layout.classify (Farray.base a) = Some Layout.Global);
  Alcotest.(check bool) "disjoint" true
    (Farray.base b >= Farray.base a + (10 * Layout.word))

let test_access_attribution () =
  let ctx = Ctx.create () in
  let a = Farray.global ctx ~name:"g" 10 in
  Ctx.set_phase ctx (Mem_object.Main 1);
  ignore (Farray.get a 3);
  Farray.set a 4 1.0;
  let obj = Option.get (Farray.obj a) in
  let c = Ctx.counters ctx in
  Alcotest.(check int) "read counted" 1
    (Counters.reads c ~obj_id:obj.Mem_object.id ~iter:1);
  Alcotest.(check int) "write counted" 1
    (Counters.writes c ~obj_id:obj.Mem_object.id ~iter:1);
  Alcotest.(check int) "no unattributed" 0 (Ctx.unattributed ctx)

let test_values_roundtrip () =
  let ctx = Ctx.create () in
  let a = Farray.heap ctx ~site:"h" 5 in
  Farray.set a 2 3.25;
  Alcotest.(check (float 1e-12)) "get returns set" 3.25 (Farray.get a 2);
  Alcotest.(check (float 1e-12)) "peek silent" 3.25 (Farray.peek a 2);
  Farray.poke a 2 7.5;
  Alcotest.(check (float 1e-12)) "poke silent" 7.5 (Farray.peek a 2)

let test_heap_signature_reuse () =
  let ctx = Ctx.create () in
  let a = Farray.heap ctx ~site:"scratch" 8 in
  let obj_a = Option.get (Farray.obj a) in
  Farray.free ctx a;
  let b = Farray.heap ctx ~site:"scratch" 8 in
  let obj_b = Option.get (Farray.obj b) in
  Alcotest.(check int) "same identity across realloc" obj_a.Mem_object.id
    obj_b.Mem_object.id;
  Alcotest.(check int) "same base" obj_a.Mem_object.base obj_b.Mem_object.base;
  Alcotest.(check bool) "live again" true obj_b.Mem_object.live

let test_heap_live_collision () =
  let ctx = Ctx.create () in
  let a = Farray.heap ctx ~site:"dup" 8 in
  let b = Farray.heap ctx ~site:"dup" 8 in
  let oa = Option.get (Farray.obj a) and ob = Option.get (Farray.obj b) in
  Alcotest.(check bool) "distinct objects" true
    (oa.Mem_object.id <> ob.Mem_object.id);
  Alcotest.(check bool) "distinct ranges" true
    (not (Mem_object.overlaps oa ~base:ob.Mem_object.base ~size:ob.Mem_object.size))

let test_stack_frames_and_attribution () =
  let ctx = Ctx.create () in
  Ctx.set_phase ctx (Mem_object.Main 1);
  Ctx.call ctx ~routine:"kernel" ~frame_words:16 (fun frame ->
      let t = Farray.stack ctx frame 8 in
      Farray.set t 0 1.;
      ignore (Farray.get t 0);
      ignore (Farray.get t 0));
  let obj = Option.get (Ctx.stack_object_of_routine ctx "kernel") in
  let c = Ctx.counters ctx in
  Alcotest.(check int) "frame reads" 2
    (Counters.reads c ~obj_id:obj.Mem_object.id ~iter:1);
  Alcotest.(check int) "frame writes" 1
    (Counters.writes c ~obj_id:obj.Mem_object.id ~iter:1);
  Alcotest.(check bool) "stack kind" true (obj.Mem_object.kind = Layout.Stack)

let test_stack_object_identity_across_calls () =
  let ctx = Ctx.create () in
  let ids = ref [] in
  for _ = 1 to 3 do
    Ctx.call ctx ~routine:"r" ~frame_words:4 (fun frame ->
        let t = Farray.stack ctx frame 2 in
        Farray.set t 0 0.;
        ids :=
          (Option.get (Ctx.stack_object_of_routine ctx "r")).Mem_object.id
          :: !ids)
  done;
  match !ids with
  | [ a; b; c ] ->
    Alcotest.(check bool) "one object per routine" true (a = b && b = c);
    Alcotest.(check int) "one stack object" 1 (List.length (Ctx.stack_objects ctx))
  | _ -> Alcotest.fail "expected three calls"

let test_frame_exhaustion () =
  let ctx = Ctx.create () in
  Ctx.call ctx ~routine:"small" ~frame_words:4 (fun frame ->
      ignore (Farray.stack ctx frame 4);
      Alcotest.(check bool) "carve beyond frame raises" true
        (try
           ignore (Farray.stack ctx frame 1);
           false
         with Invalid_argument _ -> true))

let test_frame_pop_on_exception () =
  let ctx = Ctx.create () in
  (try
     Ctx.call ctx ~routine:"boom" ~frame_words:4 (fun _ -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0
    (Nvsc_memtrace.Shadow_stack.depth (Ctx.shadow ctx))

let test_fast_tally () =
  let ctx = Ctx.create () in
  let g = Farray.global ctx ~name:"g" 4 in
  Ctx.set_phase ctx (Mem_object.Main 2);
  ignore (Farray.get g 0);
  Ctx.call ctx ~routine:"r" ~frame_words:4 (fun frame ->
      let t = Farray.stack ctx frame 2 in
      Farray.set t 0 0.;
      ignore (Farray.get t 0));
  let tal = Ctx.fast_tally ctx ~iter:2 in
  Alcotest.(check int) "stack reads" 1 tal.Ctx.stack_reads;
  Alcotest.(check int) "stack writes" 1 tal.Ctx.stack_writes;
  Alcotest.(check int) "other reads" 1 tal.Ctx.other_reads;
  let tot = Ctx.fast_tally_totals ctx in
  Alcotest.(check int) "totals" 3
    (tot.Ctx.stack_reads + tot.Ctx.stack_writes + tot.Ctx.other_reads
   + tot.Ctx.other_writes)

let test_sink_stream () =
  let ctx = Ctx.create () in
  let seen = ref [] in
  Ctx.add_sink ctx (Nvsc_memtrace.Sink.of_fn (fun a -> seen := a :: !seen));
  let g = Farray.global ctx ~name:"g" 4 in
  Farray.set g 1 2.0;
  ignore (Farray.get g 1);
  Ctx.flush_refs ctx;
  match List.rev !seen with
  | [ w; r ] ->
    Alcotest.(check bool) "write then read" true
      (Access.is_write w && Access.is_read r);
    Alcotest.(check int) "same address" w.Access.addr r.Access.addr;
    Alcotest.(check int) "word sized" Layout.word w.Access.size
  | _ -> Alcotest.fail "expected two accesses"

let test_instr_sink () =
  let ctx = Ctx.create () in
  let n = ref 0 in
  Ctx.set_instr_sink ctx (fun k -> n := !n + k);
  Ctx.flops ctx 10;
  Ctx.flops ctx 5;
  Ctx.flush_refs ctx;
  Alcotest.(check int) "instructions forwarded" 15 !n

let test_batched_delivery_program_order () =
  (* instruction counts and references must reach the sinks in program
     order, with the batch boundaries invisible *)
  let ctx = Ctx.create ~batch_capacity:2 () in
  let events = ref [] in
  Ctx.add_sink ctx
    (Nvsc_memtrace.Sink.of_fn (fun a -> events := `Ref a.Access.addr :: !events));
  Ctx.set_instr_sink ctx (fun k -> events := `Instr k :: !events);
  let g = Farray.global ctx ~name:"g" 8 in
  let addr i = Nvsc_memtrace.Layout.global_base + (i * Layout.word) in
  Ctx.flops ctx 3;
  ignore (Farray.get g 0);
  ignore (Farray.get g 1);
  Ctx.flops ctx 2;
  ignore (Farray.get g 2);
  (* capacity-2 batches have flushed mid-stream; the tail needs a flush *)
  Ctx.flops ctx 4;
  Ctx.flush_refs ctx;
  Alcotest.(check bool) "program order preserved" true
    (List.rev !events
    = [ `Instr 3; `Ref (addr 0); `Ref (addr 1); `Instr 2; `Ref (addr 2);
        `Instr 4 ]);
  let p = Ctx.pipeline_stats ctx in
  Alcotest.(check int) "refs" 3 p.Ctx.refs;
  Alcotest.(check int) "capacity flushes" 1 p.Ctx.capacity_flushes;
  Alcotest.(check bool) "boundary flushes" true (p.Ctx.boundary_flushes >= 1)

let test_bulk_helpers () =
  let ctx = Ctx.create () in
  let a = Farray.global ctx ~name:"a" 8 in
  let b = Farray.global ctx ~name:"b" 8 in
  Farray.init ctx a float_of_int;
  Alcotest.(check (float 1e-12)) "init" 5. (Farray.peek a 5);
  Farray.copy_into ctx ~src:a ~dst:b;
  Alcotest.(check (float 1e-12)) "copy" 7. (Farray.peek b 7);
  Alcotest.(check (float 1e-12)) "sum" 28. (Farray.sum ctx a);
  Farray.fill ctx b 1.;
  Alcotest.(check (float 1e-12)) "fill" 1. (Farray.peek b 3)

let test_phase_iteration_mapping () =
  let ctx = Ctx.create () in
  let g = Farray.global ctx ~name:"g" 2 in
  let obj = Option.get (Farray.obj g) in
  Ctx.set_phase ctx Mem_object.Pre;
  ignore (Farray.get g 0);
  Ctx.set_phase ctx (Mem_object.Main 1);
  ignore (Farray.get g 0);
  Ctx.set_phase ctx Mem_object.Post;
  ignore (Farray.get g 0);
  let c = Ctx.counters ctx in
  Alcotest.(check int) "pre+post in iter 0" 2
    (Counters.reads c ~obj_id:obj.Mem_object.id ~iter:0);
  Alcotest.(check int) "main in iter 1" 1
    (Counters.reads c ~obj_id:obj.Mem_object.id ~iter:1)

let test_global_overlay_merges () =
  let ctx = Ctx.create () in
  let base = Farray.global ctx ~name:"com_block" 100 in
  let view =
    Farray.global_overlay ctx ~name:"com_view" ~over:base ~offset_words:50 50
  in
  (* the registry now holds one union object with the combined name *)
  let objs = Nvsc_memtrace.Object_registry.objects (Ctx.registry ctx) in
  Alcotest.(check int) "one merged object" 1 (List.length objs);
  let merged = List.hd objs in
  Alcotest.(check bool) "combined name" true
    (String.length merged.Mem_object.name > String.length "com_block");
  Alcotest.(check int) "full span" (100 * Layout.word) merged.Mem_object.size;
  (* accesses through either view attribute to the merged object *)
  Ctx.set_phase ctx (Mem_object.Main 1);
  ignore (Farray.get base 0);
  Farray.set view 0 1.0;
  let c = Ctx.counters ctx in
  Alcotest.(check int) "read attributed" 1
    (Counters.reads c ~obj_id:merged.Mem_object.id ~iter:1);
  Alcotest.(check int) "write attributed" 1
    (Counters.writes c ~obj_id:merged.Mem_object.id ~iter:1);
  Alcotest.(check int) "nothing unattributed" 0 (Ctx.unattributed ctx)

let test_global_overlay_bounds () =
  let ctx = Ctx.create () in
  let base = Farray.global ctx ~name:"b" 10 in
  Alcotest.(check bool) "beyond base rejected" true
    (try
       ignore
         (Farray.global_overlay ctx ~name:"v" ~over:base ~offset_words:8 10);
       false
     with Invalid_argument _ -> true)

let test_free_validation () =
  let ctx = Ctx.create () in
  let g = Farray.global ctx ~name:"g" 2 in
  Alcotest.(check bool) "cannot free global" true
    (try
       Farray.free ctx g;
       false
     with Invalid_argument _ -> true)

let test_batch_capacity_invariance () =
  (* a real workload must produce identical per-iteration tallies, grand
     totals, and sink-visible reference streams whatever the batch
     capacity; the pipeline counters must satisfy their invariants *)
  let iterations = 2 in
  let run capacity =
    let ctx = Ctx.create ~batch_capacity:capacity () in
    let count = ref 0 and digest = ref 0 in
    Ctx.add_sink ctx
      (Nvsc_memtrace.Sink.create (fun b ~first ~n ->
           for i = first to first + n - 1 do
             incr count;
             (* order-sensitive stream digest *)
             digest :=
               (!digest * 31) + (Nvsc_memtrace.Sink.Batch.addr b i land 0xffff)
           done));
    let (module A : Nvsc_apps.Workload.APP) =
      Option.get (Nvsc_apps.Apps.find "gtc")
    in
    A.run ~scale:0.05 ctx ~iterations;
    Ctx.flush_refs ctx;
    let p = Ctx.pipeline_stats ctx in
    (* invariants: counters agree with what the sink saw *)
    Alcotest.(check int)
      (Printf.sprintf "refs = delivered (capacity %d)" capacity)
      !count p.Ctx.refs;
    Alcotest.(check int)
      (Printf.sprintf "sink pushed (capacity %d)" capacity)
      !count
      (List.fold_left
         (fun acc (s : Nvsc_memtrace.Sink.stats) -> acc + s.pushed)
         0 p.Ctx.sinks);
    Alcotest.(check int)
      (Printf.sprintf "batches = flushes (capacity %d)" capacity)
      p.Ctx.batches
      (p.Ctx.capacity_flushes + p.Ctx.boundary_flushes);
    if capacity = 1 then
      Alcotest.(check int) "capacity 1: every ref flushes" !count
        p.Ctx.capacity_flushes;
    let tallies =
      List.init (iterations + 1) (fun i -> Ctx.fast_tally ctx ~iter:i)
    in
    (!count, !digest, tallies, Ctx.fast_tally_totals ctx,
     Ctx.total_references ctx, Ctx.unattributed ctx)
  in
  let reference = run 65536 in
  List.iter
    (fun capacity ->
      let r = run capacity in
      Alcotest.(check bool)
        (Printf.sprintf "capacity %d matches capacity 65536" capacity)
        true (r = reference))
    [ 1; 7 ]

let suite =
  [
    Alcotest.test_case "global allocation" `Quick test_global_allocation;
    Alcotest.test_case "access attribution" `Quick test_access_attribution;
    Alcotest.test_case "value roundtrip" `Quick test_values_roundtrip;
    Alcotest.test_case "heap signature reuse" `Quick test_heap_signature_reuse;
    Alcotest.test_case "heap live collision" `Quick test_heap_live_collision;
    Alcotest.test_case "stack frames attribution" `Quick
      test_stack_frames_and_attribution;
    Alcotest.test_case "stack object identity" `Quick
      test_stack_object_identity_across_calls;
    Alcotest.test_case "frame exhaustion" `Quick test_frame_exhaustion;
    Alcotest.test_case "frame pop on exception" `Quick
      test_frame_pop_on_exception;
    Alcotest.test_case "fast tally" `Quick test_fast_tally;
    Alcotest.test_case "sink stream" `Quick test_sink_stream;
    Alcotest.test_case "instruction sink" `Quick test_instr_sink;
    Alcotest.test_case "batched delivery program order" `Quick
      test_batched_delivery_program_order;
    Alcotest.test_case "batch capacity invariance" `Quick
      test_batch_capacity_invariance;
    Alcotest.test_case "bulk helpers" `Quick test_bulk_helpers;
    Alcotest.test_case "phase->iteration mapping" `Quick
      test_phase_iteration_mapping;
    Alcotest.test_case "free validation" `Quick test_free_validation;
    Alcotest.test_case "common-block overlay merges" `Quick
      test_global_overlay_merges;
    Alcotest.test_case "overlay bounds" `Quick test_global_overlay_bounds;
  ]
