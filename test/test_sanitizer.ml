(* NVSC-San: adversarial defect-injection app + sanitizer assertions.

   The defect app seeds one instance of every trace-defect class per main
   iteration (plus the one-shot teardown defects), and the tests assert
   the sanitizer reports exactly those classes with exactly those counts —
   at batch capacities 1, 7 and 65536 — while the six shipped mini-apps
   and the shipped simulator configs report nothing at all. *)

module Ctx = Nvsc_appkit.Ctx
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Shadow_stack = Nvsc_memtrace.Shadow_stack
module San = Nvsc_sanitizer.Trace_san
module Lint = Nvsc_sanitizer.Config_lint
module D = Nvsc_sanitizer.Diagnostic

(* --- the adversarial app ------------------------------------------------- *)

let words = 16

let defect_app : (module Nvsc_apps.Workload.APP) =
  (module struct
    let name = "defect"
    let description = "seeded trace defects"
    let input_description = "adversarial"
    let paper_footprint_mb = 0.

    let run ?scale ctx ~iterations =
      ignore scale;
      Ctx.set_phase ctx Mem_object.Pre;
      let g_grid = Ctx.alloc_global ctx ~name:"g_grid" ~words in
      let h_data = Ctx.alloc_heap ctx ~site:"h_data" ~words in
      for k = 0 to words - 1 do
        Ctx.write_addr ctx ~addr:(g_grid.Mem_object.base + (8 * k));
        Ctx.write_addr ctx ~addr:(h_data.Mem_object.base + (8 * k))
      done;
      let stale_addr = ref 0 in
      for iter = 1 to iterations do
        Ctx.set_phase ctx (Mem_object.Main iter);
        (* legitimate traffic *)
        for k = 0 to words - 1 do
          Ctx.read_addr ctx ~addr:(h_data.Mem_object.base + (8 * k));
          Ctx.write_addr ctx ~addr:(g_grid.Mem_object.base + (8 * k))
        done;
        (* out-of-bounds: word read 8 bytes past the end of h_data, into
           its redzone *)
        Ctx.read_addr ctx
          ~addr:(h_data.Mem_object.base + h_data.Mem_object.size + 8);
        (* straddle: word read starting 4 bytes before the end *)
        Ctx.read_addr ctx
          ~addr:(h_data.Mem_object.base + h_data.Mem_object.size - 4);
        (* use-after-free *)
        let uaf = Ctx.alloc_heap ctx ~site:"uaf_buf" ~words:4 in
        for k = 0 to 3 do
          Ctx.write_addr ctx ~addr:(uaf.Mem_object.base + (8 * k))
        done;
        Ctx.free_heap ctx uaf;
        Ctx.read_addr ctx ~addr:uaf.Mem_object.base;
        (* stale stack: read a frame-carved address after the pop *)
        Ctx.call ctx ~routine:"victim" ~frame_words:8 (fun frame ->
            let a = Ctx.frame_carve ctx frame ~words:4 in
            for k = 0 to 3 do
              Ctx.write_addr ctx ~addr:(a + (8 * k))
            done;
            stale_addr := a);
        Ctx.read_addr ctx ~addr:!stale_addr;
        (* uninitialised read: fresh heap words, read before any write *)
        let u = Ctx.alloc_heap ctx ~site:"u_buf" ~words:4 in
        Ctx.read_addr ctx ~addr:u.Mem_object.base;
        Ctx.free_heap ctx u;
        if iter = iterations then begin
          (* leak: allocated in the main loop, never freed *)
          ignore (Ctx.alloc_heap ctx ~site:"leaky" ~words:4);
          (* overlap: a rogue registration inside h_data, behind Ctx's back *)
          let rogue =
            Mem_object.make ~id:999_983 ~name:"h_overlap" ~kind:Layout.Heap
              ~base:(h_data.Mem_object.base + 8)
              ~size:16 ~signature:"h_overlap" ()
          in
          ignore (Object_registry.register (Ctx.registry ctx) rogue);
          (* unbalanced frame: a push that bypasses Ctx.call.  Flush first
             so buffered references are delivered under the stack state
             they were emitted in (the raw push bypasses Ctx's
             pre-mutation flush on purpose). *)
          Ctx.flush_refs ctx;
          ignore
            (Shadow_stack.push (Ctx.shadow ctx) ~routine:"rogue"
               ~routine_addr:0xdead00 ~frame_size:64)
        end
      done;
      Ctx.set_phase ctx Mem_object.Post
  end)

let iterations = 3

let run_defect ~capacity ~check_init =
  let module A = (val defect_app : Nvsc_apps.Workload.APP) in
  let ctx = Ctx.create ~batch_capacity:capacity ~redzone_words:8 () in
  let san = San.attach ~check_init ctx in
  A.run ctx ~iterations;
  San.finish san

let shape report =
  List.map (fun (f : D.finding) -> (D.klass_to_string f.klass, f.owner, f.count))
    report

let shape_t = Alcotest.(triple string string int)

let expected_defects ~check_init =
  (* in report order: severity, then class rank, then owner *)
  [
    ("out-of-bounds", "h_data", iterations);
    ("straddle", "h_data", iterations);
    ("use-after-free", "uaf_buf", iterations);
    ("stale-stack", "victim", iterations);
  ]
  @ (if check_init then [ ("uninit-read", "u_buf", iterations) ] else [])
  @ [
      ("overlap", "h_data/h_overlap", 1);
      ("unbalanced-frames", "post", 1);
      ("leak", "leaky", 1);
    ]

let test_defect_classes () =
  let report = run_defect ~capacity:65536 ~check_init:true in
  Alcotest.(check (list shape_t))
    "every seeded class, nothing else"
    (expected_defects ~check_init:true)
    (shape report);
  (* no unattributed refs: every seeded defect is classified more
     precisely than that *)
  Alcotest.(check bool) "no unattributed" true
    (List.for_all (fun (f : D.finding) -> f.klass <> D.Unattributed) report)

let test_defect_classes_no_init () =
  let report = run_defect ~capacity:65536 ~check_init:false in
  Alcotest.(check (list shape_t))
    "uninit tracking is opt-in"
    (expected_defects ~check_init:false)
    (shape report)

let test_capacity_determinism () =
  let r1 = run_defect ~capacity:1 ~check_init:true in
  let r7 = run_defect ~capacity:7 ~check_init:true in
  let r64k = run_defect ~capacity:65536 ~check_init:true in
  let render r = Format.asprintf "%a" D.pp_report r in
  Alcotest.(check string) "capacity 1 = capacity 65536" (render r64k) (render r1);
  Alcotest.(check string) "capacity 7 = capacity 65536" (render r64k) (render r7)

let test_first_occurrence () =
  let report = run_defect ~capacity:7 ~check_init:true in
  List.iter
    (fun (f : D.finding) ->
      match f.klass with
      | D.Overlap | D.Leak | D.Unbalanced_frames ->
        Alcotest.(check bool)
          ("teardown finding has no stream position: " ^ f.owner)
          true (f.first = None)
      | _ ->
        (match f.first with
        | Some { phase = Mem_object.Main 1; index } ->
          Alcotest.(check bool)
            ("positive index: " ^ f.owner)
            true (index > 0)
        | _ ->
          Alcotest.failf "%s: first occurrence should be in main[1]" f.owner))
    report

(* --- shipped apps are clean --------------------------------------------- *)

let test_shipped_apps_clean () =
  List.iter
    (fun (module A : Nvsc_apps.Workload.APP) ->
      let r =
        Nvsc_core.Scavenger.run
          Nvsc_core.Scavenger.Config.(
            default |> with_scale 0.25 |> with_iterations 2
            |> with_sanitize ~check_init:true true)
          (module A)
      in
      let report = Option.get r.Nvsc_core.Scavenger.sanitizer in
      Alcotest.(check (list shape_t)) (A.name ^ " is clean") [] (shape report))
    Nvsc_apps.Apps.extended

(* --- config lint --------------------------------------------------------- *)

let test_config_clean () =
  List.iter
    (fun (module A : Nvsc_apps.Workload.APP) ->
      Alcotest.(check bool)
        ("shipped configs lint clean for " ^ A.name)
        true
        (D.is_clean (Lint.all ~app:(module A) ())))
    Nvsc_apps.Apps.extended

let owners report = List.map (fun (f : D.finding) -> f.owner) report

let test_config_broken_technology () =
  let bad =
    {
      (Nvsc_nvram.Technology.get Nvsc_nvram.Technology.PCRAM) with
      write_latency_ns = 5.;
      needs_refresh = true;
    }
  in
  Alcotest.(check (list string))
    "write-faster-than-read and refreshing NVRAM are both caught"
    [ "Technology.PCRAM.needs_refresh"; "Technology.PCRAM.write_latency_ns" ]
    (List.sort compare (owners (Lint.technology bad)))

let test_config_broken_cache_and_core () =
  let bad_l1 =
    { Nvsc_cachesim.Cache_params.paper_l1d with size_bytes = 48 * 1024 }
  in
  let caches =
    Lint.caches ~l1d:bad_l1 ~l1i:Nvsc_cachesim.Cache_params.paper_l1i
      ~l2:Nvsc_cachesim.Cache_params.paper_l2
  in
  Alcotest.(check (list string))
    "non-power-of-two L1" [ "Cache.L1D.size_bytes" ] (owners caches);
  let bad_core = { Nvsc_cpusim.Core_params.paper with l2_hit_cycles = 1 } in
  Alcotest.(check (list string))
    "inverted latency hierarchy" [ "Core.l2_hit_cycles" ]
    (owners (Lint.core bad_core))

let suite =
  [
    Alcotest.test_case "defect app: all classes detected" `Quick
      test_defect_classes;
    Alcotest.test_case "defect app: uninit tracking opt-in" `Quick
      test_defect_classes_no_init;
    Alcotest.test_case "report invariant under batch capacity" `Quick
      test_capacity_determinism;
    Alcotest.test_case "first occurrences" `Quick test_first_occurrence;
    Alcotest.test_case "shipped apps sanitize clean" `Slow
      test_shipped_apps_clean;
    Alcotest.test_case "shipped configs lint clean" `Quick test_config_clean;
    Alcotest.test_case "broken technology caught" `Quick
      test_config_broken_technology;
    Alcotest.test_case "broken cache/core caught" `Quick
      test_config_broken_cache_and_core;
  ]
