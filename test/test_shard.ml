(* Sharded cache filtering (ISSUE 9): the set-partitioned shard team must
   reproduce the serial hierarchy byte for byte — per-level cache
   counters, memory traffic, and the exact trace order — for every team
   width and every emission-batch capacity, and the per-reference shard
   hot path must stay allocation-free. *)

module Sink = Nvsc_memtrace.Sink
module Access = Nvsc_memtrace.Access
module Trace_log = Nvsc_memtrace.Trace_log
module Cache = Nvsc_cachesim.Cache
module Cache_params = Nvsc_cachesim.Cache_params
module Hierarchy = Nvsc_cachesim.Hierarchy
module Shard_filter = Nvsc_cachesim.Shard_filter
module Shard = Nvsc_core.Shard
module Scavenger = Nvsc_core.Scavenger
module Ring = Nvsc_team.Ring

(* --- partition width ----------------------------------------------------- *)

let test_shards_for () =
  (* paper geometry: 128 L1 sets, 1024 L2 sets -> width caps at 128 *)
  List.iter
    (fun (req, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "shards_for %d" req)
        expect
        (Shard_filter.shards_for req))
    [ (0, 1); (1, 1); (2, 2); (3, 2); (4, 4); (6, 4); (8, 8); (256, 128) ];
  (* a tiny L1 narrows the partition *)
  let l1d =
    Cache_params.make ~name:"tiny-l1" ~size_bytes:4096 ~associativity:4
      ~line_bytes:64 ~write_miss:Cache_params.No_write_allocate ()
  in
  Alcotest.(check int) "narrow L1 caps width" 16 (Shard_filter.shards_for ~l1d 64)

(* --- SPSC ring ----------------------------------------------------------- *)

let test_ring () =
  let r = Ring.create ~capacity:4 0 in
  Alcotest.(check int) "capacity rounds to pow2" 4 (Ring.capacity r);
  for i = 1 to 4 do
    Ring.push r i
  done;
  Alcotest.(check int) "full length" 4 (Ring.length r);
  for i = 1 to 4 do
    Alcotest.(check int) "FIFO order" i (Ring.pop r)
  done;
  Alcotest.(check int) "drained" 0 (Ring.length r);
  (* interleaved wrap-around *)
  for round = 0 to 9 do
    Ring.push r round;
    Alcotest.(check int) "wraps" round (Ring.pop r)
  done;
  let s = Ring.stats r in
  Alcotest.(check int) "pushes counted" 14 s.Ring.pushes

(* --- synthetic reference stream ------------------------------------------ *)

(* Deterministic mixed stream: strided sweeps (cache-friendly), a
   pseudo-random scatter (eviction-heavy), line-straddling sizes and a
   read/write mix — enough traffic to exercise fills, write-backs and
   forwarded writes in both levels. *)
let synth_stream n =
  let lcg = ref 12345 in
  let next () =
    lcg := (!lcg * 1103515245) + 12345;
    (!lcg lsr 7) land 0xFFFFFF
  in
  List.init n (fun i ->
      let addr =
        if i land 3 = 0 then 0x10000 + (i * 68) (* stride straddling lines *)
        else 0x400000 + (next () land 0x3FFFC0) + (i land 63)
      in
      let size = 1 lsl (i land 3) in
      let op = if i land 7 < 3 then Access.Write else Access.Read in
      (addr, size, op))

let fill_batch refs =
  let batch = Sink.Batch.create (List.length refs) in
  List.iteri
    (fun i (addr, size, op) -> Sink.Batch.set batch i ~addr ~size ~op)
    refs;
  batch

let cache_fingerprint c =
  [
    Cache.hits c; Cache.misses c; Cache.read_hits c; Cache.read_misses c;
    Cache.write_hits c; Cache.write_misses c; Cache.evictions c;
    Cache.dirty_evictions c;
  ]

let trace_accesses log =
  let acc = ref [] in
  Trace_log.replay log (fun a -> acc := a :: !acc);
  List.rev !acc

let access_triple (a : Access.t) = (a.Access.addr, a.Access.size, a.Access.op)

(* Serial baseline over the synthetic stream, delivered in
   [batch_capacity]-sized slices exactly as the emission pipeline would. *)
let serial_baseline refs ~batch_capacity =
  let log = Trace_log.create () in
  let h = Hierarchy.create ~sink:(Trace_log.sink log) () in
  let rec go refs =
    match refs with
    | [] -> ()
    | _ ->
      let chunk = List.filteri (fun i _ -> i < batch_capacity) refs in
      let rest = List.filteri (fun i _ -> i >= batch_capacity) refs in
      let batch = fill_batch chunk in
      Hierarchy.consume h batch ~first:0 ~n:(List.length chunk);
      go rest
  in
  go refs;
  Hierarchy.drain h;
  (h, log)

(* Shard team over the same stream and slicing, through the real
   feed/exchange producer protocol (worker domains, rings, recycling). *)
let team_run refs ~shards ~batch_capacity =
  let team = Shard.create ~shards ~batch_capacity () in
  let batch = ref (Sink.Batch.create batch_capacity) in
  let rec go refs =
    match refs with
    | [] -> ()
    | _ ->
      let chunk = List.filteri (fun i _ -> i < batch_capacity) refs in
      let rest = List.filteri (fun i _ -> i >= batch_capacity) refs in
      List.iteri
        (fun i (addr, size, op) -> Sink.Batch.set !batch i ~addr ~size ~op)
        chunk;
      Shard.feed team !batch ~first:0 ~n:(List.length chunk);
      batch := Shard.exchange team !batch;
      go rest
  in
  go refs;
  Shard.finish team;
  let log = Trace_log.create () in
  Shard.merge_into_trace team log;
  (team, log)

let check_team_matches_serial ~shards ~batch_capacity refs =
  let ctx = Printf.sprintf "shards=%d cap=%d" shards batch_capacity in
  let h, serial_log = serial_baseline refs ~batch_capacity in
  let team, team_log = team_run refs ~shards ~batch_capacity in
  Alcotest.(check int)
    (ctx ^ ": team width") shards (Shard.shards team);
  let sum f =
    Array.fold_left (fun acc sf -> acc + f sf) 0 (Shard.filters team)
  in
  Alcotest.(check (list int))
    (ctx ^ ": L1 counters")
    (cache_fingerprint (Hierarchy.l1d h))
    (List.map
       (fun pick ->
         sum (fun sf -> List.nth (cache_fingerprint (Shard_filter.l1d sf)) pick))
       [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  Alcotest.(check (list int))
    (ctx ^ ": L2 counters")
    (cache_fingerprint (Hierarchy.l2 h))
    (List.map
       (fun pick ->
         sum (fun sf -> List.nth (cache_fingerprint (Shard_filter.l2 sf)) pick))
       [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  Alcotest.(check int)
    (ctx ^ ": accesses") (Hierarchy.accesses h) (Shard.accesses team);
  Alcotest.(check int)
    (ctx ^ ": memory reads") (Hierarchy.memory_reads h)
    (Shard.memory_reads team);
  Alcotest.(check int)
    (ctx ^ ": memory writes") (Hierarchy.memory_writes h)
    (Shard.memory_writes team);
  Alcotest.(check (float 0.))
    (ctx ^ ": L1 miss rate")
    (Cache.miss_rate (Hierarchy.l1d h))
    (Shard.l1_miss_rate team);
  Alcotest.(check (float 0.))
    (ctx ^ ": L2 miss rate")
    (Cache.miss_rate (Hierarchy.l2 h))
    (Shard.l2_miss_rate team);
  Alcotest.(check int)
    (ctx ^ ": trace length") (Trace_log.length serial_log)
    (Trace_log.length team_log);
  (* the merged trace must be the serial trace, record for record *)
  let pairs =
    List.combine (trace_accesses serial_log) (trace_accesses team_log)
  in
  List.iteri
    (fun i (s, t) ->
      if access_triple s <> access_triple t then
        Alcotest.failf "%s: trace diverges at record %d" ctx i)
    pairs

let test_differential () =
  let refs = synth_stream 6000 in
  List.iter
    (fun shards ->
      List.iter
        (fun batch_capacity ->
          check_team_matches_serial ~shards ~batch_capacity refs)
        [ 1; 7; 65536 ])
    [ 2; 4; 8 ]

(* shards=1 requests never build a team: the width collapses to serial *)
let test_width_one_is_serial () =
  Alcotest.(check int) "effective width" 1 (Shard.effective_shards 1);
  Alcotest.(check int) "width 0" 1 (Shard.effective_shards 0)

(* --- whole-pipeline differential (Scavenger.run) ------------------------- *)

let test_scavenger_differential () =
  let app = Option.get (Nvsc_apps.Apps.find "minimd") in
  let base =
    Scavenger.Config.(
      default |> with_scale 0.1 |> with_iterations 2 |> with_trace true)
  in
  let serial = Scavenger.run base app in
  let serial_accs =
    trace_accesses (Option.get serial.Scavenger.mem_trace)
  in
  List.iter
    (fun shards ->
      let r =
        Scavenger.run Scavenger.Config.(base |> with_shards shards) app
      in
      let ctx = Printf.sprintf "shards=%d" shards in
      Alcotest.(check int)
        (ctx ^ ": footprint") serial.Scavenger.footprint_bytes
        r.Scavenger.footprint_bytes;
      Alcotest.(check int)
        (ctx ^ ": main refs") serial.Scavenger.total_main_refs
        r.Scavenger.total_main_refs;
      Alcotest.(check (float 0.))
        (ctx ^ ": l1 miss rate") serial.Scavenger.l1_miss_rate
        r.Scavenger.l1_miss_rate;
      Alcotest.(check (float 0.))
        (ctx ^ ": l2 miss rate") serial.Scavenger.l2_miss_rate
        r.Scavenger.l2_miss_rate;
      let accs = trace_accesses (Option.get r.Scavenger.mem_trace) in
      Alcotest.(check int)
        (ctx ^ ": trace length")
        (List.length serial_accs) (List.length accs);
      List.iteri
        (fun i (s, t) ->
          if access_triple s <> access_triple t then
            Alcotest.failf "%s: trace diverges at record %d" ctx i)
        (List.combine serial_accs accs))
    [ 2; 4; 8 ]

(* --- allocation-free hot path -------------------------------------------- *)

let test_consume_alloc_free () =
  let refs = synth_stream 4096 in
  let batch = fill_batch refs in
  let n = List.length refs in
  (* pre-size the event log past anything this stream can produce *)
  let sf =
    Shard_filter.create ~events_hint:(8 * n) ~shards:2 ~shard:0 ()
  in
  (* warm up: touch every code path once (fills, evictions, log stores) *)
  Shard_filter.consume sf batch ~first:0 ~n:64 ~base:0;
  let w0 = Gc.minor_words () in
  Shard_filter.consume sf batch ~first:64 ~n:(n - 64) ~base:64;
  let dw = Gc.minor_words () -. w0 in
  (* budget covers the one Span closure of the consume call — nothing
     per-reference (4032 references) *)
  if dw > 64. then
    Alcotest.failf "shard consume allocated %.0f minor words for %d refs" dw
      (n - 64)

(* --- DRAM technology-parallel power stage -------------------------------- *)

let test_power_jobs_identical () =
  let refs = synth_stream 2000 in
  let log = Trace_log.create () in
  let h = Hierarchy.create ~sink:(Trace_log.sink log) () in
  let batch = fill_batch refs in
  Hierarchy.consume h batch ~first:0 ~n:(List.length refs);
  Hierarchy.drain h;
  let replay sink = Trace_log.replay_batch log sink in
  let serial =
    Nvsc_dramsim.Memory_system.compare_technologies
      ~techs:Nvsc_nvram.Technology.paper_set ~replay ()
  in
  let parallel =
    Nvsc_dramsim.Memory_system.compare_technologies ~jobs:3
      ~techs:Nvsc_nvram.Technology.paper_set ~replay ()
  in
  List.iter2
    (fun ((ts : Nvsc_nvram.Technology.t), (ss : Nvsc_dramsim.Controller.stats))
         ((tp : Nvsc_nvram.Technology.t), (sp : Nvsc_dramsim.Controller.stats)) ->
      Alcotest.(check string) "tech order" ts.name tp.name;
      Alcotest.(check bool)
        (ts.name ^ ": stats identical") true (ss = sp))
    serial parallel

(* Property (ISSUE 10): line-run coalescing — the hierarchy's batch-time
   run detector and the shard filter's partition-side run tags — must be
   invisible in every counter and every trace record.  Random run-heavy
   word-granular streams (the access shape coalescing targets, which the
   line-granular synth_stream above cannot produce) are replayed three
   ways: per-reference access (never coalesces), batch consume (run
   detector), and the shard team (tagged selection entries). *)
let gen_run_stream =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (triple (int_bound 0x3FFF) (int_range 1 24) (int_bound 255)))

let expand_runs segs =
  List.concat_map
    (fun (line, len, wpat) ->
      List.init len (fun j ->
          let addr = 0x400000 + (line * 64) + ((j * 4) land 63) in
          let op =
            if (wpat lsr (j land 7)) land 1 = 1 then Access.Write
            else Access.Read
          in
          (addr, 4, op)))
    segs

let per_ref_baseline refs =
  let log = Trace_log.create () in
  let h = Hierarchy.create ~sink:(Trace_log.sink log) () in
  List.iter (fun (addr, size, op) -> Hierarchy.access_raw h ~addr ~size ~op) refs;
  Hierarchy.drain h;
  (h, log)

let hier_fp h =
  ( cache_fingerprint (Hierarchy.l1d h),
    cache_fingerprint (Hierarchy.l2 h),
    Hierarchy.accesses h,
    Hierarchy.memory_reads h,
    Hierarchy.memory_writes h )

let coalescing_invisible =
  QCheck.Test.make
    ~name:"run coalescing is invisible (per-ref = consume = team)" ~count:20
    (QCheck.make gen_run_stream)
    (fun segs ->
      let refs = expand_runs segs in
      let ha, la = per_ref_baseline refs in
      let hc, lc = serial_baseline refs ~batch_capacity:64 in
      let team, lt = team_run refs ~shards:4 ~batch_capacity:64 in
      let sum f =
        Array.fold_left (fun acc sf -> acc + f sf) 0 (Shard.filters team)
      in
      let team_fp cache_of =
        List.init 8 (fun p ->
            sum (fun sf -> List.nth (cache_fingerprint (cache_of sf)) p))
      in
      let triples log = List.map access_triple (trace_accesses log) in
      let serial = triples la in
      hier_fp ha = hier_fp hc
      && cache_fingerprint (Hierarchy.l1d ha) = team_fp Shard_filter.l1d
      && cache_fingerprint (Hierarchy.l2 ha) = team_fp Shard_filter.l2
      && Hierarchy.accesses ha = Shard.accesses team
      && Hierarchy.memory_reads ha = Shard.memory_reads team
      && Hierarchy.memory_writes ha = Shard.memory_writes team
      && serial = triples lc
      && serial = triples lt)

let suite =
  [
    Alcotest.test_case "partition width follows the geometry" `Quick
      test_shards_for;
    Alcotest.test_case "spsc ring is FIFO and counts pressure" `Quick
      test_ring;
    Alcotest.test_case "shard team equals serial hierarchy (widths x caps)"
      `Slow test_differential;
    Alcotest.test_case "width-one request stays serial" `Quick
      test_width_one_is_serial;
    Alcotest.test_case "sharded scavenger run equals serial (minimd)" `Slow
      test_scavenger_differential;
    Alcotest.test_case "shard consume hot path is allocation-free" `Quick
      test_consume_alloc_free;
    Alcotest.test_case "technology-parallel power stage is byte-identical"
      `Quick test_power_jobs_identical;
    QCheck_alcotest.to_alcotest coalescing_invisible;
  ]
