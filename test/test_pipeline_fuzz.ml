(* Whole-pipeline property tests: random synthetic applications generated
   against the appkit API, run through the scavenger, with the analysis
   invariants checked on whatever came out. *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module Mem_object = Nvsc_memtrace.Mem_object
module OM = Nvsc_core.Object_metrics

(* A random app: a handful of global/heap arrays and routines, with a
   random per-iteration access script. *)
type action =
  | Read_array of int * int (* array index, element count *)
  | Write_array of int * int
  | Call_routine of int * int * int (* routine id, writes, read passes *)

type spec = {
  seed : int;
  arrays : (bool * int) list; (* (is_heap, words) *)
  script : action list;
  iterations : int;
}

let gen_spec =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* arrays =
      list_size (int_range 1 6) (pair bool (int_range 4 256))
    in
    let n_arrays = List.length arrays in
    let* script =
      list_size (int_range 1 20)
        (oneof
           [
             (let* a = int_range 0 (n_arrays - 1) in
              let* n = int_range 1 64 in
              return (Read_array (a, n)));
             (let* a = int_range 0 (n_arrays - 1) in
              let* n = int_range 1 64 in
              return (Write_array (a, n)));
             (let* r = int_range 0 3 in
              let* w = int_range 1 8 in
              let* p = int_range 0 10 in
              return (Call_routine (r, w, p)));
           ])
    in
    let* iterations = int_range 1 6 in
    return { seed; arrays; script; iterations })

let arbitrary_spec = QCheck.make gen_spec

let app_of_spec spec : (module Nvsc_apps.Workload.APP) =
  (module struct
    let name = "fuzz"
    let description = "generated"
    let input_description = "generated"
    let paper_footprint_mb = 0.

    let run ?scale ctx ~iterations =
      ignore scale;
      Ctx.set_phase ctx Mem_object.Pre;
      let arrays =
        List.mapi
          (fun i (is_heap, words) ->
            if is_heap then Farray.heap ctx ~site:(Printf.sprintf "h%d" i) words
            else Farray.global ctx ~name:(Printf.sprintf "g%d" i) words)
          spec.arrays
      in
      let arr = Array.of_list arrays in
      for iter = 1 to iterations do
        Ctx.set_phase ctx (Mem_object.Main iter);
        List.iter
          (fun action ->
            match action with
            | Read_array (a, n) ->
              let fa = arr.(a mod Array.length arr) in
              for k = 0 to Stdlib.min n (Farray.length fa) - 1 do
                ignore (Farray.get fa k)
              done
            | Write_array (a, n) ->
              let fa = arr.(a mod Array.length arr) in
              for k = 0 to Stdlib.min n (Farray.length fa) - 1 do
                Farray.set fa k (float_of_int k)
              done
            | Call_routine (r, w, passes) ->
              Ctx.call ctx
                ~routine:(Printf.sprintf "r%d" r)
                ~frame_words:w
                (fun frame ->
                  let t = Farray.stack ctx frame w in
                  for k = 0 to w - 1 do
                    Farray.set t k 0.
                  done;
                  for _ = 1 to passes do
                    for k = 0 to w - 1 do
                      ignore (Farray.get t k)
                    done
                  done))
          spec.script
      done;
      Ctx.set_phase ctx Mem_object.Post;
      List.iter (fun fa -> ignore (Farray.get fa 0)) arrays
  end)

let run_spec spec =
  let iterations = spec.iterations in
  Nvsc_core.Scavenger.run
    Nvsc_core.Scavenger.Config.(default |> with_iterations iterations)
    (app_of_spec spec)

let fuzz_attribution_complete =
  QCheck.Test.make ~name:"fuzz: every reference attributed" ~count:40
    arbitrary_spec (fun spec ->
      (run_spec spec).Nvsc_core.Scavenger.unattributed = 0)

let fuzz_shares_sum =
  QCheck.Test.make ~name:"fuzz: ref shares sum to 1 (or all zero)" ~count:40
    arbitrary_spec (fun spec ->
      let r = run_spec spec in
      let total =
        List.fold_left (fun acc (m : OM.t) -> acc +. m.OM.ref_share) 0.
          r.Nvsc_core.Scavenger.metrics
      in
      r.Nvsc_core.Scavenger.total_main_refs = 0 || Float.abs (total -. 1.) < 1e-9)

let fuzz_counts_match_tallies =
  QCheck.Test.make ~name:"fuzz: object counters match fast tallies" ~count:40
    arbitrary_spec (fun spec ->
      let r = run_spec spec in
      let from_metrics =
        List.fold_left
          (fun acc (m : OM.t) -> acc + m.OM.reads + m.OM.writes)
          0 r.Nvsc_core.Scavenger.metrics
      in
      let from_tallies =
        Array.to_list r.Nvsc_core.Scavenger.fast_tallies
        |> List.tl (* iteration 0 = pre/post, not in main metrics *)
        |> List.fold_left
             (fun acc (t : Ctx.fast_tally) ->
               acc + t.stack_reads + t.stack_writes + t.other_reads
               + t.other_writes)
             0
      in
      from_metrics = from_tallies
      && from_metrics = r.Nvsc_core.Scavenger.total_main_refs)

let fuzz_cdf_invariants =
  QCheck.Test.make ~name:"fuzz: usage CDF monotone, ends at footprint"
    ~count:40 arbitrary_spec (fun spec ->
      let r = run_spec spec in
      let cdf = Nvsc_core.Usage_variance.usage_cdf r in
      let rec monotone prev = function
        | [] -> true
        | (p : Nvsc_core.Usage_variance.cdf_point) :: rest ->
          p.cumulative_bytes >= prev && monotone p.cumulative_bytes rest
      in
      monotone 0 cdf
      && List.length cdf = spec.iterations + 1)

let fuzz_sampling_observes_subset =
  QCheck.Test.make ~name:"fuzz: sampling observes a subset" ~count:20
    arbitrary_spec (fun spec ->
      let full = run_spec spec in
      let sampled =
        let iterations = spec.iterations in
        Nvsc_core.Scavenger.run
          Nvsc_core.Scavenger.Config.(
            default |> with_iterations iterations
            |> with_sampling ~period:10 ~sample_length:1)
          (app_of_spec spec)
      in
      sampled.Nvsc_core.Scavenger.total_main_refs
      <= full.Nvsc_core.Scavenger.total_main_refs)

let fuzz_sanitizer_clean =
  (* the sanitizer must report nothing on well-behaved random apps — no
     false positives — and identically so at degenerate, prime and huge
     batch capacities *)
  QCheck.Test.make ~name:"fuzz: sanitizer clean at capacities 1/7/65536"
    ~count:15 arbitrary_spec (fun spec ->
      let reports =
        List.map
          (fun capacity ->
            let r =
              let iterations = spec.iterations in
              Nvsc_core.Scavenger.run
                Nvsc_core.Scavenger.Config.(
                  default |> with_iterations iterations
                  |> with_batch_capacity capacity |> with_sanitize true)
                (app_of_spec spec)
            in
            Option.get r.Nvsc_core.Scavenger.sanitizer)
          [ 1; 7; 65536 ]
      in
      List.for_all Nvsc_sanitizer.Diagnostic.is_clean reports
      && List.for_all (fun r -> r = List.hd reports) reports)

let fuzz_determinism =
  QCheck.Test.make ~name:"fuzz: runs are deterministic" ~count:20
    arbitrary_spec (fun spec ->
      let a = run_spec spec and b = run_spec spec in
      a.Nvsc_core.Scavenger.total_main_refs
      = b.Nvsc_core.Scavenger.total_main_refs
      && List.length a.Nvsc_core.Scavenger.metrics
         = List.length b.Nvsc_core.Scavenger.metrics)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      fuzz_attribution_complete;
      fuzz_shares_sum;
      fuzz_counts_match_tallies;
      fuzz_cdf_invariants;
      fuzz_sampling_observes_subset;
      fuzz_sanitizer_clean;
      fuzz_determinism;
    ]
