(* Regenerates the golden NVT fixture [mini.nvt].

   The fixture pins the exact on-disk bytes of the v2 trace format:
   explicit little-endian fixed-width fields, LEB128 varints, zigzag
   deltas, per-chunk MD5s and the whole-trace digest.  The decoder
   regression test ([test_trace_codec.ml], "golden fixture") reads the
   committed file and checks content and digest, so the format cannot
   silently drift with the host's endianness or the in-memory batch
   representation (the Bigarray-backed [Sink.Batch] must encode the
   same bytes the int-array one did).

   Regenerate (from the repo root) only on a deliberate format bump:

     dune exec test/golden/gen_mini.exe -- test/golden/mini.nvt

   and update the pinned digest in the test alongside. *)

module TC = Nvsc_memtrace.Trace_codec
module Access = Nvsc_memtrace.Access
module Persist = Nvsc_memtrace.Persist
module Mem_object = Nvsc_memtrace.Mem_object

let meta =
  {
    TC.app = "golden-mini";
    description = "hand-built token coverage fixture";
    input_description = "n/a";
    paper_footprint_mb = 0.25;
    scale = 0.5;
    iterations = 2;
    batch_capacity = 8;
  }

let objects =
  [
    Mem_object.make ~id:0 ~name:"grid" ~kind:Nvsc_memtrace.Layout.Global
      ~base:4096 ~size:512 ();
    Mem_object.make ~id:1 ~name:"field" ~kind:Nvsc_memtrace.Layout.Heap
      ~base:8192 ~size:1024 ~callstack:[ "main"; "alloc_field" ]
      ~alloc_phase:(Nvsc_memtrace.Mem_object.Main 1) ();
  ]

let resolve id = List.nth_opt objects id

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mini.nvt" in
  (* chunk_capacity 4 forces several chunks, exercising the index *)
  let w = TC.Writer.create ~chunk_capacity:4 ~resolve ~path ~meta () in
  TC.Writer.add_phase w Nvsc_memtrace.Mem_object.Pre;
  TC.Writer.add_ref w ~addr:4096 ~size:8 ~op:Access.Write ~obj_id:0;
  TC.Writer.add_ref w ~addr:4104 ~size:8 ~op:Access.Write ~obj_id:0;
  TC.Writer.add_instr w 3;
  TC.Writer.add_phase w (Nvsc_memtrace.Mem_object.Main 1);
  TC.Writer.add_persist w (Persist.Declare { obj_id = 1 });
  TC.Writer.add_persist w
    (Persist.Epoch_begin { label = "step"; checkpoint = true });
  TC.Writer.add_ref w ~addr:8192 ~size:4 ~op:Access.Read ~obj_id:1;
  TC.Writer.add_ref w ~addr:8200 ~size:4 ~op:Access.Write ~obj_id:1;
  TC.Writer.add_ref w ~addr:4160 ~size:8 ~op:Access.Read ~obj_id:0;
  TC.Writer.add_ref w ~addr:8204 ~size:4 ~op:Access.Write ~obj_id:1;
  TC.Writer.add_persist w (Persist.Flush { obj_id = 1; off = 0; len = 16 });
  TC.Writer.add_persist w Persist.Fence;
  TC.Writer.add_persist w
    (Persist.Epoch_commit { label = "step"; checkpoint = true });
  TC.Writer.add_instr w 7;
  TC.Writer.add_phase w Nvsc_memtrace.Mem_object.Post;
  TC.Writer.add_ref w ~addr:4096 ~size:8 ~op:Access.Read ~obj_id:(-1);
  let s = TC.Writer.finish w ~objects () in
  Printf.printf "wrote %s: refs=%d reads=%d writes=%d chunks=%d digest=%s\n"
    path s.TC.refs s.TC.reads s.TC.writes s.TC.chunks s.TC.digest
