module HS = Nvsc_dramsim.Hybrid_system
module Controller = Nvsc_dramsim.Controller
module Access = Nvsc_memtrace.Access
module Tech = Nvsc_nvram.Technology

let sttram = Tech.get Tech.STTRAM

(* route by address parity of the line *)
let parity_placement addr =
  if addr / 64 mod 2 = 0 then HS.Dram_side else HS.Nvram_side

let seq n = List.init n (fun i -> Access.read ~addr:(i * 64) ~size:64)

let test_routing () =
  let h = HS.create ~nvram:sttram ~placement:parity_placement () in
  List.iter (HS.access h) (seq 100);
  let s = HS.stats h in
  Alcotest.(check int) "all counted" 100 s.HS.accesses;
  Alcotest.(check int) "half to DRAM" 50 s.HS.dram.Controller.accesses;
  Alcotest.(check int) "half to NVRAM" 50 s.HS.nvram.Controller.accesses;
  Alcotest.(check (float 1e-9)) "fraction" 0.5 s.HS.nvram_fraction

let test_all_dram_placement () =
  let h = HS.create ~nvram:sttram ~placement:(fun _ -> HS.Dram_side) () in
  List.iter (HS.access h) (seq 200);
  let s = HS.stats h in
  Alcotest.(check int) "NVRAM idle" 0 s.HS.nvram.Controller.accesses;
  (* the idle NVRAM half still burns its background power over the joint
     makespan *)
  Alcotest.(check bool) "background charged" true (s.HS.total_energy_nj > 0.);
  Alcotest.(check (float 1e-9)) "no NVRAM writes" 0. s.HS.nvram_write_fraction

let test_write_fraction () =
  let h = HS.create ~nvram:sttram ~placement:parity_placement () in
  (* writes only on odd lines -> all writes to NVRAM *)
  for i = 0 to 49 do
    HS.access h (Access.write ~addr:(((2 * i) + 1) * 64) ~size:64);
    HS.access h (Access.read ~addr:(2 * i * 64) ~size:64)
  done;
  let s = HS.stats h in
  Alcotest.(check (float 1e-9)) "all writes to NVRAM" 1.0 s.HS.nvram_write_fraction

let test_makespan_is_max () =
  let h = HS.create ~nvram:sttram ~placement:parity_placement () in
  List.iter (HS.access h) (seq 500);
  let s = HS.stats h in
  Alcotest.(check bool) "joint makespan covers both sides" true
    (s.HS.elapsed_ns >= s.HS.dram.Controller.elapsed_ns
    && s.HS.elapsed_ns >= s.HS.nvram.Controller.elapsed_ns)

let test_compare_designs_bounds () =
  let trace =
    List.init 3000 (fun i ->
        if i mod 4 = 0 then Access.write ~addr:(i * 64) ~size:64
        else Access.read ~addr:(i * 64) ~size:64)
  in
  let designs =
    HS.compare_designs ~nvram:sttram ~placement:parity_placement
      ~replay:(fun sink -> List.iter (Nvsc_memtrace.Sink.push_access sink) trace)
      ()
  in
  let power name =
    let _, p, _ = List.find (fun (n, _, _) -> n = name) designs in
    p
  in
  Alcotest.(check (float 1e-9)) "baseline" 1.0 (power "all-DRAM");
  Alcotest.(check bool) "all-NVRAM saves" true (power "all-STTRAM" < 1.0);
  Alcotest.(check bool) "hybrid between the bounds" true
    (power "hybrid" <= 1.0 +. 1e-9
    && power "hybrid" >= power "all-STTRAM" -. 0.05)

let test_validation () =
  Alcotest.check_raises "volatile NVRAM side"
    (Invalid_argument "Hybrid_system.create: nvram side must be an NVRAM technology")
    (fun () ->
      ignore
        (HS.create ~nvram:(Tech.get Tech.DDR3) ~placement:parity_placement ()))

let suite =
  [
    Alcotest.test_case "routing" `Quick test_routing;
    Alcotest.test_case "all-DRAM placement" `Quick test_all_dram_placement;
    Alcotest.test_case "write fraction" `Quick test_write_fraction;
    Alcotest.test_case "makespan is max of sides" `Quick test_makespan_is_max;
    Alcotest.test_case "compare designs bounds" `Quick
      test_compare_designs_bounds;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
