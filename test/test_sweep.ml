(* The sweep engine: JSON codec fidelity, matrix expansion, the domain
   pool's ordering contract, cache-key sensitivity, the on-disk cache's
   hit/miss/evict accounting, and the two determinism contracts — reports
   byte-identical across --jobs and across cold/warm cache runs, and the
   engine path byte-identical to the legacy serial experiments path. *)

module Json = Nvsc_util.Json
module Cell = Nvsc_sweep.Cell
module Matrix = Nvsc_sweep.Matrix
module Pool = Nvsc_sweep.Pool
module Cache = Nvsc_sweep.Cache
module Engine = Nvsc_sweep.Engine
module E = Nvsc_core.Experiment
module Technology = Nvsc_nvram.Technology

let tiny_config = { E.scale = 0.1; iterations = 2; perf_scale = 0.1 }

let spec ?(app = "cam") ?(kind = Cell.Objects) ?(scale = 0.1)
    ?(iterations = 2) ?tech ?trace_digest () =
  { Cell.app; kind; scale; iterations; tech; trace_digest }

let with_fmt f =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* unique per-call temp dirs: a stale dir from an earlier run must not
   look like a warm cache, and the repo cwd must stay clean when the test
   binary is run outside dune's sandbox *)
let fresh_dir () =
  let base = Filename.temp_file "nvsc-sweep-cache" "" in
  Sys.remove base;
  base ^ ".d"

(* --- JSON --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Json in
  let j =
    Obj
      [
        ("s", Str "a\"b\\c\nd\te\r \x01 ü");
        ("i", Int (-42));
        ("f", Float 0.1);
        ("big", Float 1.234567890123e17);
        ("neg", Float (-0.0));
        ("whole", Float 3.0);
        ("inf", float infinity);
        ("ninf", float neg_infinity);
        ("nan", float nan);
        ("n", Null);
        ("b", Bool true);
        ("l", List [ Int 1; Str "x"; List []; Obj [] ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (of_string (to_string j) = j);
  Alcotest.(check bool)
    "nonfinite floats survive as strings" true
    (Float.is_nan (to_float (member "nan" (of_string (to_string j))))
    && to_float (member "inf" (of_string (to_string j))) = infinity);
  Alcotest.(check bool)
    "garbage rejected" true
    (try
       ignore (of_string "{\"a\": 1} trailing");
       false
     with Json.Parse_error _ -> true)

(* --- spec and payload codecs -------------------------------------------- *)

let test_spec_codec () =
  let specs =
    [
      spec ();
      spec ~app:"gtc" ~kind:Cell.Perf ~scale:0.5 ~iterations:7 ();
      spec ~kind:Cell.Place ~tech:Technology.PCRAM ();
      spec ~trace_digest:(String.make 32 'a') ();
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "spec roundtrips" true
        (Cell.spec_of_json (Cell.spec_to_json s) = s))
    specs

let test_payload_codecs_render_identically () =
  List.iter
    (fun kind ->
      let s =
        match kind with
        | Cell.Place -> spec ~kind ~tech:Technology.STTRAM ()
        | _ -> spec ~kind ()
      in
      let payload = Cell.execute s in
      let decoded = Cell.payload_of_json (Cell.payload_to_json payload) in
      Alcotest.(check string)
        (Cell.kind_to_string kind ^ " decoded payload renders identically")
        (with_fmt (fun fmt -> Cell.render fmt s payload))
        (with_fmt (fun fmt -> Cell.render fmt s decoded)))
    Cell.all_kinds

(* --- matrix ------------------------------------------------------------- *)

let test_matrix_expansion () =
  let m =
    match
      Matrix.make ~apps:[ "cam"; "gtc" ]
        ~kinds:[ Cell.Objects; Cell.Place ]
        ~techs:[ "sttram"; "pcram" ] ~scale:0.2 ~iterations:3 ()
    with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let cells = Matrix.cells m in
  (* per app: one objects cell + one place cell per tech *)
  Alcotest.(check int) "cell count" 6 (List.length cells);
  Alcotest.(check (list string))
    "app-major order"
    [ "cam"; "cam"; "cam"; "gtc"; "gtc"; "gtc" ]
    (List.map (fun (c : Cell.spec) -> c.app) cells);
  Alcotest.(check int) "place cells carry a tech" 4
    (List.length
       (List.filter (fun (c : Cell.spec) -> c.tech <> None) cells))

let test_matrix_validation () =
  let bad = [
    Matrix.make ~apps:[ "hpl" ] ();
    Matrix.make ~apps:[] ();
    Matrix.make ~techs:[ "core-rope" ] ();
    Matrix.make ~scale:(-1.) ();
    Matrix.make ~iterations:0 ();
  ]
  in
  List.iter
    (fun r -> Alcotest.(check bool) "rejected" true (Result.is_error r))
    bad

let test_overrides () =
  let ov s =
    match Matrix.parse_override s with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let m =
    match
      Matrix.make ~apps:[ "cam"; "gtc" ]
        ~kinds:[ Cell.Objects; Cell.Perf ]
        ~scale:1.0 ~iterations:10
        ~overrides:
          [
            ov "kind=perf,scale=0.5";
            ov "app=gtc,kind=perf,iterations=3";
            ov "app=cam,scale=2.0";
          ]
        ()
    with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let find app kind =
    List.find
      (fun (c : Cell.spec) -> c.app = app && c.kind = kind)
      (Matrix.cells m)
  in
  Alcotest.(check (float 0.)) "perf scale overridden" 0.5
    (find "gtc" Cell.Perf).scale;
  Alcotest.(check int) "later override wins per field" 3
    (find "gtc" Cell.Perf).iterations;
  Alcotest.(check (float 0.)) "app-selective override" 2.0
    (find "cam" Cell.Objects).scale;
  Alcotest.(check (float 0.)) "untouched cell keeps defaults" 1.0
    (find "gtc" Cell.Objects).scale;
  Alcotest.(check bool) "bad key rejected" true
    (Result.is_error (Matrix.parse_override "speed=2"));
  Alcotest.(check bool) "bad value rejected" true
    (Result.is_error (Matrix.parse_override "scale=fast"))

(* --- pool --------------------------------------------------------------- *)

let test_pool_order () =
  let items = Array.init 100 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "order preserved at jobs=%d" jobs)
        (Array.map (fun i -> i * i) items)
        (Pool.map ~jobs (fun i -> i * i) items))
    [ 1; 2; 8; 200 ]

let test_pool_empty_and_exn () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 Fun.id [||]);
  let first_failure =
    try
      ignore
        (Pool.map ~jobs:4
           (fun i -> if i mod 3 = 1 then failwith (string_of_int i) else i)
           (Array.init 10 Fun.id));
      "no exception"
    with Failure msg -> msg
  in
  (* items 1, 4, 7 fail; input order decides which exception surfaces *)
  Alcotest.(check string) "first failing index wins" "1" first_failure

(* --- digests ------------------------------------------------------------ *)

let test_digest_stability () =
  let a = spec () and b = spec () in
  Alcotest.(check string) "equal specs, equal digests" (Cell.digest a)
    (Cell.digest b);
  Alcotest.(check int) "digest is 32 hex chars" 32
    (String.length (Cell.digest a))

let gen_spec =
  QCheck.Gen.(
    let* app = oneofl [ "nek5000"; "cam"; "gtc"; "s3d" ] in
    let* kind = oneofl Cell.all_kinds in
    let* scale = float_range 0.05 4.0 in
    let* iterations = int_range 1 30 in
    let* tech =
      oneofl
        [ None; Some Technology.PCRAM; Some Technology.STTRAM;
          Some Technology.MRAM ]
    in
    let* trace_digest = oneofl [ None; Some (String.make 32 'b') ] in
    return { Cell.app; kind; scale; iterations; tech; trace_digest })

let mutate_field i (s : Cell.spec) =
  match i mod 6 with
  | 0 -> { s with app = (if s.app = "cam" then "gtc" else "cam") }
  | 1 ->
    {
      s with
      kind = (if s.kind = Cell.Objects then Cell.Power else Cell.Objects);
    }
  | 2 -> { s with scale = s.scale +. 0.125 }
  | 3 -> { s with iterations = s.iterations + 1 }
  | 4 ->
    {
      s with
      tech =
        (match s.tech with
        | Some Technology.PCRAM -> Some Technology.MRAM
        | _ -> Some Technology.PCRAM);
    }
  | _ ->
    {
      s with
      trace_digest =
        (match s.trace_digest with
        | None -> Some (String.make 32 'c')
        | Some _ -> None);
    }

let digest_sensitive =
  QCheck.Test.make ~name:"digest changes when any spec field changes"
    ~count:200
    QCheck.(pair (make gen_spec) small_nat)
    (fun (s, i) ->
      let s' = mutate_field i s in
      s' <> s && Cell.digest s' <> Cell.digest s)

(* --- cache -------------------------------------------------------------- *)

let small_payload () = Cell.execute (spec ())

let test_cache_cold_warm () =
  let c = Cache.create ~dir:(fresh_dir ()) () in
  let s = spec () in
  Alcotest.(check bool) "cold lookup misses" true (Cache.find c s = None);
  let payload = small_payload () in
  Cache.store c s payload;
  (match Cache.find c s with
  | None -> Alcotest.fail "warm lookup missed"
  | Some p ->
    Alcotest.(check string) "stored payload renders identically"
      (with_fmt (fun fmt -> Cell.render fmt s payload))
      (with_fmt (fun fmt -> Cell.render fmt s p)));
  let st = Cache.stats c in
  Alcotest.(check int) "one hit" 1 st.Cache.hits;
  Alcotest.(check int) "one miss" 1 st.Cache.misses;
  Alcotest.(check int) "no evictions" 0 st.Cache.evictions

let test_cache_corruption () =
  let c = Cache.create ~dir:(fresh_dir ()) () in
  let s = spec () in
  Cache.store c s (small_payload ());
  let path = Filename.concat (Cache.dir c) (Cell.digest s ^ ".json") in
  let oc = open_out path in
  output_string oc "{ not json";
  close_out oc;
  Alcotest.(check bool) "corrupt entry misses" true (Cache.find c s = None);
  Alcotest.(check bool) "corrupt entry deleted" false (Sys.file_exists path);
  Alcotest.(check int) "counted as miss" 1 (Cache.stats c).Cache.misses

let test_cache_eviction () =
  let c = Cache.create ~dir:(fresh_dir ()) ~max_entries:2 () in
  let payload = small_payload () in
  let specs =
    [ spec (); spec ~iterations:3 (); spec ~iterations:4 () ]
  in
  List.iter (fun s -> Cache.store c s payload) specs;
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions;
  Alcotest.(check bool) "oldest entry evicted" true
    (Cache.find c (List.nth specs 0) = None);
  Alcotest.(check bool) "newest entries kept" true
    (Cache.find c (List.nth specs 1) <> None
    && Cache.find c (List.nth specs 2) <> None)

(* --- engine ------------------------------------------------------------- *)

let small_matrix () =
  match
    Matrix.make ~apps:[ "cam" ] ~scale:0.1 ~iterations:2 ()
  with
  | Ok m -> m
  | Error e -> Alcotest.fail e

let render_outcomes outcomes =
  with_fmt (fun fmt -> Engine.pp_outcomes fmt outcomes)

let test_engine_jobs_deterministic () =
  let m = small_matrix () in
  let o1, s1 = Engine.run ~jobs:1 m in
  let o8, s8 = Engine.run ~jobs:8 m in
  Alcotest.(check int) "all cells ran" 4 s1.Engine.cells;
  Alcotest.(check int) "jobs clamped to cell count" 4 s8.Engine.jobs;
  Alcotest.(check string) "byte-identical report at jobs 1 vs 8"
    (render_outcomes o1) (render_outcomes o8)

let test_engine_cache_cold_then_warm () =
  let m = small_matrix () in
  let dir = fresh_dir () in
  let o1, s1 = Engine.run ~jobs:2 ~cache:(Cache.create ~dir ()) m in
  Alcotest.(check int) "cold run misses everything" 4 s1.Engine.misses;
  Alcotest.(check int) "cold run hits nothing" 0 s1.Engine.hits;
  let o2, s2 = Engine.run ~jobs:2 ~cache:(Cache.create ~dir ()) m in
  Alcotest.(check int) "warm run hits everything" 4 s2.Engine.hits;
  Alcotest.(check int) "warm run re-executes nothing" 0 s2.Engine.misses;
  Alcotest.(check bool) "warm outcomes flagged cached" true
    (Array.for_all (fun o -> o.Engine.cached) o2);
  Alcotest.(check string) "byte-identical report cold vs warm"
    (render_outcomes o1) (render_outcomes o2)

let test_experiments_path_matches_legacy () =
  let config = tiny_config in
  let legacy = with_fmt (fun fmt -> E.run_all fmt ~config ()) in
  let matrix = Engine.experiments_matrix ~config in
  let dir = fresh_dir () in
  let engine_run () =
    let outcomes, _ = Engine.run ~jobs:2 ~cache:(Cache.create ~dir ()) matrix in
    with_fmt (fun fmt ->
        E.run_all_of_data fmt (Engine.experiments_data ~config outcomes))
  in
  let cold = engine_run () in
  Alcotest.(check string) "engine path matches the legacy serial path"
    legacy cold;
  (* the warm pass renders entirely from decoded cache payloads *)
  Alcotest.(check string) "warm-cache rerun is byte-identical" cold
    (engine_run ())

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "spec codec" `Quick test_spec_codec;
    Alcotest.test_case "payload codecs render identically" `Quick
      test_payload_codecs_render_identically;
    Alcotest.test_case "matrix expansion" `Quick test_matrix_expansion;
    Alcotest.test_case "matrix validation" `Quick test_matrix_validation;
    Alcotest.test_case "overrides" `Quick test_overrides;
    Alcotest.test_case "pool preserves order" `Quick test_pool_order;
    Alcotest.test_case "pool empty + exceptions" `Quick
      test_pool_empty_and_exn;
    Alcotest.test_case "digest stability" `Quick test_digest_stability;
    QCheck_alcotest.to_alcotest digest_sensitive;
    Alcotest.test_case "cache cold/warm" `Quick test_cache_cold_warm;
    Alcotest.test_case "cache corruption recovery" `Quick
      test_cache_corruption;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
    Alcotest.test_case "engine deterministic across jobs" `Quick
      test_engine_jobs_deterministic;
    Alcotest.test_case "engine cache cold then warm" `Quick
      test_engine_cache_cold_then_warm;
    Alcotest.test_case "experiments path matches legacy" `Slow
      test_experiments_path_matches_legacy;
  ]
